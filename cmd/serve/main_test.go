package main

import (
	"os"
	"strings"
	"testing"
)

// swallowStdout diverts the process stdout to the null device so a
// successful run's report does not pollute the test output; the
// returned func restores it.
func swallowStdout(t *testing.T) func() {
	t.Helper()
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	return func() {
		os.Stdout = old
		null.Close()
	}
}

// defaultOpts mirrors the flag defaults in main so each case can
// perturb exactly one knob.
func defaultOpts() cliOpts {
	return cliOpts{
		streams: 8, batch: 4, model: "70b",
		tokmin: 4, tokmax: 8, rate: 30000,
		seed: 1, scale: 8,
		sched: "decode-only", chunk: 32,
		arrival: "poisson", preempt: "off",
		policies: "unopt,dynmg+BMA", stepcache: "on",
	}
}

// TestRunValidation: every malformed flag combination is rejected by
// run with a flag-level message before any simulation starts.
func TestRunValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*cliOpts)
		want string
	}{
		{"zero streams", func(o *cliOpts) { o.streams = 0 }, "-streams"},
		{"zero batch", func(o *cliOpts) { o.batch = 0 }, "-batch"},
		{"inverted decode range", func(o *cliOpts) { o.tokmin = 8; o.tokmax = 4 }, "-tokmin"},
		{"zero tokmin", func(o *cliOpts) { o.tokmin = 0 }, "-tokmin"},
		{"negative rate", func(o *cliOpts) { o.rate = -1 }, "-rate"},
		{"negative kvcap", func(o *cliOpts) { o.kvcap = -1 }, "-kvcap"},
		{"bad model", func(o *cliOpts) { o.model = "13b" }, "model mix"},
		{"bad sched", func(o *cliOpts) { o.sched = "fifo" }, "scheduler"},
		{"bad stepcache", func(o *cliOpts) { o.stepcache = "maybe" }, "step-cache"},
		{"bad arrival spec", func(o *cliOpts) { o.arrival = "burst:100:0.5" }, "burst"},
		{"arrival duty out of range", func(o *cliOpts) { o.arrival = "burst:100:2:4" }, "duty"},
		{"bad preempt policy", func(o *cliOpts) { o.preempt = "oldest" }, "preempt"},
		{"preempt without kvcap", func(o *cliOpts) { o.sched = "chunked"; o.preempt = "newest" }, "KV"},
		{"preempt without prefill sched", func(o *cliOpts) { o.kvcap = 256; o.preempt = "newest" }, "preempt"},
		{"negative slo-ttft", func(o *cliOpts) { o.sloTTFT = -5 }, "-slo-ttft"},
		{"explicit zero slo-ttft", func(o *cliOpts) { o.sloTTFTSet = true }, "-slo-ttft"},
		{"negative slo-tbt", func(o *cliOpts) { o.sloTBT = -0.5 }, "-slo-tbt"},
		{"explicit zero slo-tbt", func(o *cliOpts) { o.sloTBTSet = true }, "-slo-tbt"},
		{"empty policy list", func(o *cliOpts) { o.policies = " , " }, "policy"},
		{"bad policy", func(o *cliOpts) { o.policies = "unopt,bogus" }, "bogus"},
		{"negative sample-every", func(o *cliOpts) { o.sampleEvery = -1 }, "-sample-every"},
		{"sample-every without output", func(o *cliOpts) { o.sampleEvery = 100 }, "no output path"},
		{"timeseries without sample-every", func(o *cliOpts) { o.timeseriesOut = "ts-%.csv" }, "-sample-every"},
		// The default policy list has two cells, so a literal path
		// cannot name both artifacts.
		{"multi-cell trace without placeholder", func(o *cliOpts) { o.traceOut = "trace.json" }, "placeholder"},
		{"unwritable trace dir", func(o *cliOpts) {
			o.policies = "unopt"
			o.traceOut = "/nonexistent-telemetry-dir/t.json"
		}, "not writable"},
	}
	for _, c := range cases {
		o := defaultOpts()
		c.mut(&o)
		err := run(o)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestRunTelemetryOutputs: a well-formed telemetry flag set passes
// validation and a tiny run writes all three artifacts — non-empty,
// with the expected leading bytes.
func TestRunTelemetryOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full serve grid")
	}
	dir := t.TempDir()
	o := defaultOpts()
	o.streams = 2
	o.scale = 64
	o.policies = "unopt"
	o.tokmin, o.tokmax = 2, 2
	o.traceOut = dir + "/trace.json"
	o.eventsOut = dir + "/events.jsonl"
	o.timeseriesOut = dir + "/ts.csv"
	o.sampleEvery = 1000
	old := swallowStdout(t)
	err := run(o)
	old()
	if err != nil {
		t.Fatalf("telemetry run failed: %v", err)
	}
	for path, prefix := range map[string]string{
		o.traceOut:      `{"traceEvents":`,
		o.eventsOut:     `{"kind":`,
		o.timeseriesOut: "cycle,node,",
	} {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing artifact: %v", err)
		}
		if !strings.HasPrefix(string(b), prefix) {
			t.Errorf("%s starts %q, want prefix %q", path, b[:min(len(b), 40)], prefix)
		}
	}
}

// TestRunDefaultSLOZeroIsDisabled: the unset zero defaults must NOT
// trip the explicit-zero rejection — only flag.Visit-recorded zeroes
// are contradictions. The default opts run a real (tiny) grid to
// prove the zero SLO is treated as disabled, not invalid.
func TestRunDefaultSLOZeroIsDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full serve grid")
	}
	o := defaultOpts()
	o.streams = 2
	o.scale = 64
	o.policies = "unopt"
	o.tokmin, o.tokmax = 2, 2
	// Divert the table from the test's stdout.
	old := swallowStdout(t)
	err := run(o)
	old()
	if err != nil {
		t.Fatalf("default zero SLO rejected: %v", err)
	}
}
