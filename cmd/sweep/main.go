// Command sweep performs the parameter sweeps the paper relies on:
// the throttling-configuration sweep behind Tables 2–4 (sampling
// period, gear limit, static thread-block levels) and the baseline
// sweeps of Section 6.2.3 ("For those requiring parameter sweeping,
// we have also swept under our experiment settings for a fair
// comparison").
//
//	sweep -kind static -model 70b -seq 2048 -scale 8
//	sweep -kind gear   -model 70b -seq 2048 -scale 8
//	sweep -kind period -model 70b -seq 2048 -scale 8
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/sim"
	"repro/internal/throttle"
	"repro/internal/workload"
)

func main() {
	var (
		kind  = flag.String("kind", "static", "sweep kind: static, gear, period")
		model = flag.String("model", "70b", "model: 70b or 405b")
		seq   = flag.Int("seq", 2048, "sequence length (already scaled)")
		scale = flag.Int("scale", 8, "cache scale divisor (Table 5 16MB / scale)")
	)
	flag.Parse()
	if err := run(*kind, *model, *seq, *scale); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(kind, model string, seq, scale int) error {
	var m workload.ModelConfig
	switch model {
	case "70b":
		m = workload.Llama3_70B
	case "405b":
		m = workload.Llama3_405B
	default:
		return fmt.Errorf("unknown model %q", model)
	}
	op := llamcat.Logit(m, seq)
	base := llamcat.DefaultConfig()
	base.L2SizeBytes /= scale

	cell := func(cfg sim.Config, pol llamcat.Policy) (llamcat.Result, error) {
		return llamcat.Run(cfg, op, pol)
	}

	unopt, err := cell(base, llamcat.PolicyUnopt)
	if err != nil {
		return err
	}
	fmt.Printf("workload %s, L2 %d KiB, unopt %d cycles\n\n", op.Name(), base.L2SizeBytes>>10, unopt.Cycles)

	switch kind {
	case "static":
		fmt.Printf("%-10s %12s %10s %10s %10s\n", "max_tb", "cycles", "speedup", "mshr-hit", "tcs")
		for n := 1; n <= base.NumWindows; n++ {
			res, err := cell(base, llamcat.Policy{Throttle: fmt.Sprintf("static:%d", n), Arbiter: llamcat.PolicyUnopt.Arbiter})
			if err != nil {
				return err
			}
			fmt.Printf("static:%-3d %12d %10.3f %10.3f %10.3f\n", n, res.Cycles,
				llamcat.Speedup(unopt, res), res.Metrics.MSHRHitRate, res.Metrics.CacheStallFrac)
		}
	case "gear":
		fmt.Printf("%-10s %12s %10s\n", "max gear", "cycles", "speedup")
		for g := 0; g <= 4; g++ {
			cfg := base
			params := throttle.DefaultDynMGParams()
			params.MaxGear = g
			cfg.DynMG = &params
			res, err := cell(cfg, llamcat.PolicyDynMG)
			if err != nil {
				return err
			}
			fmt.Printf("gear %-5d %12d %10.3f\n", g, res.Cycles, llamcat.Speedup(unopt, res))
		}
	case "period":
		fmt.Printf("%-10s %12s %10s\n", "period", "cycles", "speedup")
		for _, p := range []int64{500, 1000, 2000, 4000, 8000} {
			cfg := base
			params := throttle.DefaultDynMGParams()
			params.SamplingPeriod = p
			params.SubPeriod = p / 5
			cfg.DynMG = &params
			res, err := cell(cfg, llamcat.PolicyDynMG)
			if err != nil {
				return err
			}
			fmt.Printf("%-10d %12d %10.3f\n", p, res.Cycles, llamcat.Speedup(unopt, res))
		}
	default:
		return fmt.Errorf("unknown sweep kind %q", kind)
	}
	return nil
}
