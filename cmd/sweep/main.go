// Command sweep performs the parameter sweeps the paper relies on:
// the throttling-configuration sweep behind Tables 2–4 (sampling
// period, gear limit, static thread-block levels) and the baseline
// sweeps of Section 6.2.3 ("For those requiring parameter sweeping,
// we have also swept under our experiment settings for a fair
// comparison").
//
//	sweep -kind static -model 70b -seq 2048 -scale 8
//	sweep -kind gear   -model 70b -seq 2048 -scale 8
//	sweep -kind period -model 70b -seq 2048 -scale 8
//
// The full flag set (documented with defaults in docs/EXPERIMENTS.md,
// which CI keeps in sync with this binary):
//
//	-kind        sweep kind: static, gear, period
//	-model       model: 70b or 405b
//	-seq         sequence length (already scaled)
//	-scale       cache scale divisor (Table 5 16 MB / scale)
//	-parallel    concurrent simulations (0 = GOMAXPROCS)
//	-v           stream per-run progress to stderr
//	-cpuprofile  write a pprof CPU profile to this file
//	-memprofile  write a pprof heap profile to this file
//
// Sweep points are independent simulations and fan out across
// -parallel workers with results in stable order; -cpuprofile and
// -memprofile capture pprof profiles of the sweep for the
// performance work described in README.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/profiling"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/throttle"
	"repro/internal/workload"
)

func main() {
	var (
		kind       = flag.String("kind", "static", "sweep kind: static, gear, period")
		model      = flag.String("model", "70b", "model: 70b or 405b")
		seq        = flag.Int("seq", 2048, "sequence length (already scaled)")
		scale      = flag.Int("scale", 8, "cache scale divisor (Table 5 16MB / scale)")
		parallel   = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
		verbose    = flag.Bool("v", false, "stream per-run progress to stderr")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}

	err = run(*kind, *model, *seq, *scale, *parallel, *verbose)

	// Flush the profiles before the error exit below: os.Exit skips
	// defers, which would truncate them.
	stopCPU()
	if merr := profiling.WriteHeap(*memprofile); merr != nil {
		fmt.Fprintln(os.Stderr, "sweep:", merr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(kind, model string, seq, scale, parallel int, verbose bool) error {
	var m workload.ModelConfig
	switch model {
	case "70b":
		m = workload.Llama3_70B
	case "405b":
		m = workload.Llama3_405B
	default:
		return fmt.Errorf("unknown model %q", model)
	}
	op := workload.LogitOp{Model: m, SeqLen: seq}
	base := sim.DefaultConfig()
	base.L2SizeBytes /= scale

	opts := experiments.Options{Base: &base, Parallel: parallel}
	if verbose {
		opts.Log = os.Stderr
	}
	r := experiments.NewRunner(opts)

	// The swept points plus the unoptimized baseline run as one
	// parallel matrix with stable ordering; cells[0] is the baseline.
	cells := []experiments.CellSpec{{Op: op, Pol: experiments.Unopt}}
	var labels []string
	switch kind {
	case "static":
		for n := 1; n <= base.NumWindows; n++ {
			pol := experiments.Policy{
				Label:    fmt.Sprintf("static:%d", n),
				Throttle: fmt.Sprintf("static:%d", n),
				Arbiter:  experiments.Unopt.Arbiter,
			}
			cells = append(cells, experiments.CellSpec{Op: op, Pol: pol})
			labels = append(labels, pol.Label)
		}
	case "gear":
		for g := 0; g <= 4; g++ {
			cfg := base
			params := throttle.DefaultDynMGParams()
			params.MaxGear = g
			cfg.DynMG = &params
			cells = append(cells, experiments.CellSpec{Op: op, Pol: experiments.DynMG, Base: &cfg})
			labels = append(labels, fmt.Sprintf("gear %d", g))
		}
	case "period":
		for _, p := range []int64{500, 1000, 2000, 4000, 8000} {
			cfg := base
			params := throttle.DefaultDynMGParams()
			params.SamplingPeriod = p
			params.SubPeriod = p / 5
			cfg.DynMG = &params
			cells = append(cells, experiments.CellSpec{Op: op, Pol: experiments.DynMG, Base: &cfg})
			labels = append(labels, fmt.Sprintf("period %d", p))
		}
	default:
		return fmt.Errorf("unknown sweep kind %q", kind)
	}

	results, err := r.RunCells(cells)
	if err != nil {
		return err
	}
	unopt := results[0]
	fmt.Printf("workload %s, L2 %d KiB, unopt %d cycles\n\n", op.Name(), base.L2SizeBytes>>10, unopt.Cycles)
	fmt.Printf("%-10s %12s %10s %10s %10s\n", "point", "cycles", "speedup", "mshr-hit", "tcs")
	for i, res := range results[1:] {
		fmt.Printf("%-10s %12d %10.3f %10.3f %10.3f\n", labels[i], res.Cycles,
			stats.Speedup(unopt.Cycles, res.Cycles), res.Metrics.MSHRHitRate, res.Metrics.CacheStallFrac)
	}
	return nil
}
