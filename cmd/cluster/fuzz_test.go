// Native fuzz target for the -rates multiplier-list parser: no input
// panics and every accepted list contains only positive finite
// multipliers — strconv.ParseFloat happily reads "NaN" and "Inf",
// which a plain r <= 0 check does not reject (all NaN comparisons are
// false), so the parser must filter non-finite values explicitly.

package main

import (
	"math"
	"testing"
)

func FuzzParseRates(f *testing.F) {
	for _, s := range []string{
		"1", "1,2,4", "0.5, 2", "1,,2", "", ",", "x", "-1", "0",
		"NaN", "Inf", "-Inf", "1,NaN", "1e400", "1e-300", "2,inf",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		rates, err := parseRates(s)
		if err != nil {
			return
		}
		if len(rates) == 0 {
			t.Fatalf("parseRates(%q) accepted an empty list", s)
		}
		for _, r := range rates {
			if !(r > 0) || math.IsInf(r, 0) || math.IsNaN(r) {
				t.Fatalf("parseRates(%q) accepted non-positive or non-finite multiplier %v", s, r)
			}
		}
	})
}
