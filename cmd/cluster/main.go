// Command cluster runs fleet-scale serving scenarios: an open-loop
// request stream dispatched by a router to N simulated nodes, each a
// full continuous-batching engine on its own cycle-level simulator.
// This is the production regime above cmd/serve — the question is no
// longer only how one accelerator behaves under batched decode
// traffic, but how routing policy spreads that traffic across a
// fleet, and how the answer interacts with the paper's cache
// arbitration/throttling policies running on every node.
//
//	cluster                                   # stock 16-request fleet, 5 routers × {1,2,4} nodes
//	cluster -nodes 8 -routers p2c,affinity    # narrower matrix
//	cluster -streams 32 -sessions 8 -rate 8000
//	cluster -policy dynmg+BMA -model mix -av  # cache policy / workload knobs
//	cluster -sched chunked -chunk 32 -routers ttft-pressure,least-outstanding
//	cluster -arrival burst:40000:0.25:6 -shed 400:3:20000:forward
//	cluster -rates 1,2,4 -nodes 2 -routers least-outstanding -shed 400 -slo-ttft 2000000
//	cluster -sched chunked -session-depth 3 -prefix-cache 4096 -routers affinity,prefix-affinity
//	cluster -sched chunked -session-depth 3 -prefix-caches 0,4096 -session-sweep 4,8 -nodes 2
//	cluster -faults crash:0:50000:150000,detect:5000 -nodes 2 -routers lot -slo-ttft 600000
//	cluster -fault-mtbfs 100000,300000 -fault-mttrs 50000 -fault-detect 5000 -nodes 4 -routers lot
//	cluster -json                             # machine-readable fleet metrics
//
// Workload flags (-streams, -sessions, -seqmin/-seqmax,
// -tokmin/-tokmax, -rate, -seed, -arrival) shape the fixed-seed
// request population and its arrival-rate shape (bursty, ramping,
// diurnal or trace-replayed modulation of the Poisson process);
// scheduler flags (-sched, -chunk, -kvcap, -preempt) select every
// node's prefill/decode co-scheduling policy, prefill chunk size,
// KV-capacity admission bound and recompute-on-preempt victim policy
// (the ttft-pressure router balances on the prefill backlog these
// schedulers create); -shed configures router-level overload control
// (per-node saturation threshold, retry cap, exponential backoff,
// optional least-loaded forwarding); SLO flags (-slo-ttft, -slo-tbt)
// set per-request deadlines and add goodput-under-SLO reports;
// -rates switches to the overload-grid mode — the workload is
// regenerated at each arrival-rate multiplier and swept against the
// overload combos built from -preempt/-shed, producing the
// goodput-vs-load curves; session flags (-session-depth,
// -prefix-cache) chain each session's requests into multi-turn
// conversations and give every node a capacity-bounded prefix cache so
// follow-up turns routed to the node holding their context skip
// re-prefilling it (the affinity and prefix-affinity routers exploit
// this); -prefix-caches switches to the prefix-grid mode — the
// workload is regenerated at each -session-sweep locality point and
// swept across cache capacities × -routers, producing the
// TTFT-vs-router curves of the prefix-reuse study; -faults injects a
// deterministic crash/straggler schedule into a single run (explicit
// crash:/slow: clauses or a gen: splitmix64 generator, detect:
// detection latency, redispatch/drop in-flight recovery, aware/blind
// routing) and -fault-mtbfs x -fault-mttrs switches to the
// fault-grid mode — each MTBF x MTTR regime is run twice, in-flight
// redispatch vs drop-on-failure, on one generated crash schedule
// (seeded by -seed, -fault-count crashes per node, -fault-detect
// detection latency), producing goodput-per-failure-regime tables;
// -nodes and -routers shape the evaluation matrix; -policy selects the cache-level
// (throttle+arbiter) policy every node runs; -scale divides the
// prompt-length range and the L2 size together, like every other
// harness; -stepcache selects the token-step fast path (on =
// signature memo shared across the fleet's nodes and the grid's
// cells, nomemo = no memoized replay, off = the naive reference
// pipeline); telemetry flags record the request lifecycle —
// -trace-out writes a Chrome trace-event JSON trace per cell
// (openable in Perfetto: router and nodes as processes, batch slots
// as threads, requests as flow-linked spans), -events-out a JSONL
// event log, -timeseries-out a CSV of per-node gauges sampled every
// -sample-every cycles; with more than one cell the paths need a %
// placeholder that expands to the cell label, and recording is
// bit-inert — metrics are identical with the flags on or off, and
// the files are byte-reproducible at any -parallel width (the
// events' memo-hit annotation shares the step-cache caveat below;
// -stepcache nomemo removes it);
// -hwprof attributes every node's per-step hardware-counter deltas to
// phase (prefill, decode, recompute after preempt/redispatch), to the
// co-scheduled streams and to -sample-every wall-clock buckets,
// classifies each node's bottleneck (memory-bound, compute-bound,
// stalled, idle) and prints the fleet profile report after the table
// (or to -hwprof-out; works in every grid mode, and hw counter tracks
// also flow into the telemetry exporters);
// -json switches the report from the aligned table to a
// JSON document of the full per-cell fleet metrics (TTFT percentiles
// included); -cpuprofile/-memprofile capture pprof profiles of the
// run. Runs are deterministic for a fixed flag set at any -parallel
// width (modulo the step-cache hit-rate diagnostics, which depend on
// fan-out timing).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/hwprof"
	"repro/internal/profiling"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// cliOpts carries the parsed flag set into run. The *Set booleans
// record which optional flags were passed explicitly (main fills them
// via flag.Visit) so run can reject explicit zeroes without treating
// the defaults as errors — and stays unit-testable without a flag
// set.
type cliOpts struct {
	streams, sessions, batch       int
	sessionDepth                   int
	prefixCache                    int64
	prefixCaches, sessionSweep     string
	nodes, routers, policy, model  string
	seqmin, seqmax, tokmin, tokmax int
	rate                           float64
	seed                           uint64
	av                             bool
	scale                          int
	sched                          string
	chunk                          int
	kvcap                          int64
	arrival, preempt, shed, rates  string
	faults                         string
	faultMTBFs, faultMTTRs         string
	faultDetect                    int64
	faultCount                     int
	sloTTFT                        int64
	sloTBT                         float64
	sloTTFTSet, sloTBTSet          bool
	faultDetectSet, faultCountSet  bool
	parallel                       int
	verbose, jsonOut               bool
	stepcache                      string
	traceOut, eventsOut            string
	timeseriesOut                  string
	sampleEvery                    int64
	hwprof                         bool
	hwprofOut                      string
}

func main() {
	var o cliOpts
	flag.IntVar(&o.streams, "streams", 16, "number of decode requests in the fleet scenario")
	flag.IntVar(&o.sessions, "sessions", 4, "distinct sessions the requests are drawn from (0 = one per request)")
	flag.IntVar(&o.sessionDepth, "session-depth", 1, "turns per conversation: >1 chains session requests so follow-ups extend the previous turn's context")
	flag.Int64Var(&o.prefixCache, "prefix-cache", 0, "per-node session prefix-cache capacity in KV tokens (0 = off; needs a prefill -sched)")
	flag.StringVar(&o.prefixCaches, "prefix-caches", "", "prefix-grid mode: comma-separated per-node cache capacities (e.g. 0,4096) swept against -session-sweep and -routers")
	flag.StringVar(&o.sessionSweep, "session-sweep", "", "prefix-grid mode: comma-separated session counts (default: just -sessions)")
	flag.IntVar(&o.batch, "batch", 4, "per-node continuous-batching capacity")
	flag.StringVar(&o.nodes, "nodes", "1,2,4", "comma-separated node counts to evaluate")
	flag.StringVar(&o.routers, "routers", "all", "comma-separated router policies (round-robin, least-outstanding, p2c, affinity, prefix-affinity, ttft-pressure) or 'all'")
	flag.StringVar(&o.policy, "policy", "dynmg+BMA", "cache policy every node runs (throttle+arbiter)")
	flag.StringVar(&o.model, "model", "70b", "request model mix: 70b, 405b or mix")
	flag.IntVar(&o.seqmin, "seqmin", 0, "min prompt length (0 = 512/scale)")
	flag.IntVar(&o.seqmax, "seqmax", 0, "max prompt length (0 = 2048/scale)")
	flag.IntVar(&o.tokmin, "tokmin", 4, "min tokens decoded per request")
	flag.IntVar(&o.tokmax, "tokmax", 8, "max tokens decoded per request")
	flag.Float64Var(&o.rate, "rate", 15000, "mean inter-arrival gap in cycles (0 = all arrive at cycle 0)")
	flag.Uint64Var(&o.seed, "seed", 1, "arrival-process seed")
	flag.BoolVar(&o.av, "av", false, "append the AV operator to every token step")
	flag.IntVar(&o.scale, "scale", 8, "divide default prompt lengths and the L2 size by this factor")
	flag.StringVar(&o.sched, "sched", "decode-only", "prefill scheduler every node runs: decode-only, prefill-first or chunked")
	flag.IntVar(&o.chunk, "chunk", 32, "prefill chunk size in tokens (chunked scheduler only)")
	flag.Int64Var(&o.kvcap, "kvcap", 0, "per-node KV-cache capacity in tokens, gating admission (0 = unlimited)")
	flag.StringVar(&o.arrival, "arrival", "poisson", "arrival shape: poisson, burst:PERIOD:DUTY:FACTOR, ramp:PERIOD:FACTOR, diurnal:PERIOD:FACTOR or trace:PERIOD:M1,M2,...")
	flag.StringVar(&o.preempt, "preempt", "off", "per-node KV preemption victim policy: off, newest or fewest-tokens (needs a prefill -sched and -kvcap)")
	flag.StringVar(&o.shed, "shed", "off", "router overload control: off or SAT[:RETRIES[:BACKOFF[:forward]]] (saturation tokens, retry cap, backoff cycles)")
	flag.Int64Var(&o.sloTTFT, "slo-ttft", 0, "TTFT SLO deadline in cycles (0 = no TTFT deadline)")
	flag.Float64Var(&o.sloTBT, "slo-tbt", 0, "mean time-between-tokens SLO deadline in cycles (0 = no TBT deadline)")
	flag.StringVar(&o.rates, "rates", "", "overload-grid mode: comma-separated arrival-rate multipliers (e.g. 1,2,4) swept against the -preempt/-shed combos")
	flag.StringVar(&o.faults, "faults", "off", "node-failure schedule: off or comma-joined clauses crash:NODE:AT[:REJOIN], slow:NODE:FROM:TO:FACTOR, gen:SEED:MTBF:MTTR:COUNT, detect:CYCLES, drop|redispatch, blind|aware")
	flag.StringVar(&o.faultMTBFs, "fault-mtbfs", "", "fault-grid mode: comma-separated mean-time-between-failures values in cycles (needs -fault-mttrs)")
	flag.StringVar(&o.faultMTTRs, "fault-mttrs", "", "fault-grid mode: comma-separated mean-time-to-repair values in cycles (needs -fault-mtbfs)")
	flag.Int64Var(&o.faultDetect, "fault-detect", 0, "fault-grid mode: failure-detection latency in cycles (>= 0)")
	flag.IntVar(&o.faultCount, "fault-count", 3, "fault-grid mode: crash incidents per generated schedule")
	flag.IntVar(&o.parallel, "parallel", 0, "concurrent cells / node engines (0 = GOMAXPROCS)")
	flag.BoolVar(&o.verbose, "v", false, "stream per-cell progress to stderr")
	flag.BoolVar(&o.jsonOut, "json", false, "emit machine-readable JSON metrics instead of the table")
	flag.StringVar(&o.stepcache, "stepcache", "on", "token-step fast path: on, nomemo or off (the naive reference)")
	flag.StringVar(&o.traceOut, "trace-out", "", "write a Chrome trace-event JSON (Perfetto) trace per cell; with >1 cell the path needs a % cell placeholder")
	flag.StringVar(&o.eventsOut, "events-out", "", "write a JSONL lifecycle-event log per cell (same % placeholder rule)")
	flag.StringVar(&o.timeseriesOut, "timeseries-out", "", "write a CSV gauge time series per cell (needs -sample-every; same % placeholder rule)")
	flag.Int64Var(&o.sampleEvery, "sample-every", 0, "sample per-node telemetry gauges every N cycles (0 = off; needs an output path)")
	flag.BoolVar(&o.hwprof, "hwprof", false, "attribute hardware counters per phase/request/bucket on every node and classify the bottleneck (-sample-every sets the bucket width)")
	flag.StringVar(&o.hwprofOut, "hwprof-out", "", "write the per-cell fleet hardware profile report to this file instead of stdout (needs -hwprof; same % placeholder rule)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()
	o.sloTTFTSet = flagSet("slo-ttft")
	o.sloTBTSet = flagSet("slo-tbt")
	o.faultDetectSet = flagSet("fault-detect")
	o.faultCountSet = flagSet("fault-count")

	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		os.Exit(1)
	}

	err = run(o)

	// Flush the profiles before the error exit below: os.Exit skips
	// defers, which would truncate them.
	stopCPU()
	if merr := profiling.WriteHeap(*memprofile); merr != nil {
		fmt.Fprintln(os.Stderr, "cluster:", merr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		os.Exit(1)
	}
}

// flagSet reports whether the named flag was passed explicitly, so a
// contradictory combination (-chunk without -sched chunked) or an
// explicit zero (-slo-ttft 0) errors instead of being silently
// treated as the default.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func modelMix(name string) ([]workload.ModelConfig, error) {
	switch name {
	case "70b":
		return []workload.ModelConfig{workload.Llama3_70B}, nil
	case "405b":
		return []workload.ModelConfig{workload.Llama3_405B}, nil
	case "mix":
		return []workload.ModelConfig{workload.Llama3_70B, workload.Llama3_405B}, nil
	}
	return nil, fmt.Errorf("unknown model mix %q", name)
}

// parseNodes reads the -nodes list, rejecting non-positive counts up
// front — a zero node count would otherwise surface as a deep
// simulator error (or, with a naive modulo router, a panic).
func parseNodes(list string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(list, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		n, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("invalid -nodes entry %q: %v", s, err)
		}
		if n <= 0 {
			return nil, fmt.Errorf("-nodes entries must be positive, got %d", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -nodes list")
	}
	return out, nil
}

func parseRouters(list string) ([]cluster.Policy, error) {
	if list == "all" {
		return cluster.Policies(), nil
	}
	var out []cluster.Policy
	for _, s := range strings.Split(list, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		p, err := cluster.ParsePolicy(s)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -routers list")
	}
	return out, nil
}

// parseRates reads the -rates multiplier list of the overload-grid
// mode, rejecting non-positive multipliers up front.
func parseRates(list string) ([]float64, error) {
	var out []float64
	for _, s := range strings.Split(list, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		r, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid -rates entry %q: %v", s, err)
		}
		// ParseFloat accepts "NaN" and "Inf"; a NaN multiplier would slip
		// past a plain r <= 0 check (NaN comparisons are all false) and an
		// infinite one would zero every inter-arrival gap downstream.
		if math.IsNaN(r) || math.IsInf(r, 0) || r <= 0 {
			return nil, fmt.Errorf("-rates entries must be positive and finite, got %v", r)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -rates list")
	}
	return out, nil
}

// parseCaches reads the -prefix-caches capacity list of the
// prefix-grid mode. Zero entries are allowed — they are the cache-off
// baseline column — but negatives are rejected up front.
func parseCaches(list string) ([]int64, error) {
	var out []int64
	for _, s := range strings.Split(list, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		c, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid -prefix-caches entry %q: %v", s, err)
		}
		if c < 0 {
			return nil, fmt.Errorf("-prefix-caches entries must be non-negative, got %d", c)
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -prefix-caches list")
	}
	return out, nil
}

// parseSessionSweep reads the -session-sweep session-count list of the
// prefix-grid mode.
func parseSessionSweep(list string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(list, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		n, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("invalid -session-sweep entry %q: %v", s, err)
		}
		if n <= 0 {
			return nil, fmt.Errorf("-session-sweep entries must be positive, got %d", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -session-sweep list")
	}
	return out, nil
}

func run(o cliOpts) error {
	mode, err := serving.ParseStepCacheMode(o.stepcache)
	if err != nil {
		return err
	}
	schedPol, err := serving.ParseSchedPolicy(o.sched)
	if err != nil {
		return err
	}
	preemptPol, err := serving.ParsePreemptPolicy(o.preempt)
	if err != nil {
		return err
	}
	arrival, err := serving.ParseArrival(o.arrival)
	if err != nil {
		return err
	}
	overload, err := cluster.ParseOverload(o.shed)
	if err != nil {
		return err
	}
	faults, err := cluster.ParseFaults(o.faults)
	if err != nil {
		return err
	}
	// Validate the workload shape up front with flag-level messages
	// instead of letting a deep generator or engine error (or hang)
	// report it. An SLO deadline flag passed explicitly must be
	// positive — an explicit zero is a contradiction (asking for a
	// deadline and disabling it at once), not a disabled deadline.
	switch {
	case o.streams <= 0:
		return fmt.Errorf("-streams must be positive, got %d", o.streams)
	case o.batch <= 0:
		return fmt.Errorf("-batch must be positive, got %d", o.batch)
	case o.sessions < 0:
		return fmt.Errorf("-sessions must be non-negative, got %d", o.sessions)
	case o.sessionDepth < 0:
		return fmt.Errorf("-session-depth must be non-negative, got %d", o.sessionDepth)
	case o.prefixCache < 0:
		return fmt.Errorf("-prefix-cache must be non-negative, got %d", o.prefixCache)
	case o.tokmin <= 0 || o.tokmax < o.tokmin:
		return fmt.Errorf("decode range [-tokmin %d, -tokmax %d] invalid", o.tokmin, o.tokmax)
	case o.rate < 0:
		return fmt.Errorf("-rate must be non-negative, got %v", o.rate)
	case o.kvcap < 0:
		return fmt.Errorf("-kvcap must be non-negative, got %d", o.kvcap)
	case o.sloTTFT < 0 || (o.sloTTFTSet && o.sloTTFT == 0):
		return fmt.Errorf("-slo-ttft must be a positive cycle deadline, got %d", o.sloTTFT)
	case o.sloTBT < 0 || (o.sloTBTSet && o.sloTBT == 0):
		return fmt.Errorf("-slo-tbt must be a positive cycle deadline, got %v", o.sloTBT)
	}
	slo := serving.SLO{TTFTCycles: o.sloTTFT, TBTCycles: o.sloTBT}
	sched := serving.SchedulerConfig{Policy: schedPol, KVCapTokens: o.kvcap, Preempt: preemptPol,
		PrefixCacheTokens: o.prefixCache}
	if schedPol == serving.SchedChunked {
		sched.ChunkTokens = o.chunk
	} else if flagSet("chunk") {
		return fmt.Errorf("-chunk only applies to -sched chunked (got -sched %s)", schedPol)
	}
	if err := sched.Validate(); err != nil {
		return err
	}
	if o.scale <= 0 {
		o.scale = 1
	}
	nodeCounts, err := parseNodes(o.nodes)
	if err != nil {
		return err
	}
	routerPols, err := parseRouters(o.routers)
	if err != nil {
		return err
	}
	pol, err := llamcat.ParsePolicy(o.policy)
	if err != nil {
		return err
	}
	models, err := modelMix(o.model)
	if err != nil {
		return err
	}
	// Computed defaults clamp to the mapping floor like
	// cluster.DefaultScenario; explicit values are validated as given.
	if o.seqmin == 0 {
		if o.seqmin = 512 / o.scale; o.seqmin < 16 {
			o.seqmin = 16
		}
	}
	if o.seqmax == 0 {
		if o.seqmax = 2048 / o.scale; o.seqmax < o.seqmin {
			o.seqmax = o.seqmin
		}
	}
	ccfg := cluster.ScenarioConfig{
		ScenarioConfig: serving.ScenarioConfig{
			Name:             fmt.Sprintf("%s/%dreq/seed%d", o.model, o.streams, o.seed),
			Seed:             o.seed,
			NumRequests:      o.streams,
			Models:           models,
			MinPromptLen:     o.seqmin,
			MaxPromptLen:     o.seqmax,
			MinDecode:        o.tokmin,
			MaxDecode:        o.tokmax,
			MeanInterArrival: o.rate,
			Arrival:          arrival,
			MaxBatch:         o.batch,
			IncludeAV:        o.av,
			SessionDepth:     o.sessionDepth,
			Sched:            sched,
		},
		NumSessions: o.sessions,
	}

	base := sim.DefaultConfig()
	cachePol := experiments.Policy{Label: o.policy, Throttle: pol.Throttle, Arbiter: pol.Arbiter}
	// Telemetry output paths are validated before any simulation —
	// inside each mode, where the sweep's cell count (and so the %
	// placeholder requirement) is known. -hwprof consumes the
	// -sample-every grid directly (bucketed utilization), so sampling
	// without a telemetry output path is legal when profiling is on.
	trace := &telemetry.Spec{
		TraceOut:          o.traceOut,
		EventsOut:         o.eventsOut,
		TimeseriesOut:     o.timeseriesOut,
		SampleEvery:       o.sampleEvery,
		AllowBareSampling: o.hwprof,
	}
	if o.hwprofOut != "" && !o.hwprof {
		return fmt.Errorf("-hwprof-out needs -hwprof")
	}
	opts := experiments.Options{Base: &base, Scale: o.scale, Parallel: o.parallel, StepCache: mode, Trace: trace,
		HWProf: hwprof.Spec{Enabled: o.hwprof, SampleEvery: o.sampleEvery}, HWProfOut: o.hwprofOut}
	if o.verbose {
		opts.Log = os.Stderr
	}

	if o.rates != "" && o.prefixCaches != "" {
		return fmt.Errorf("-rates (overload grid) and -prefix-caches (prefix grid) select different modes, pick one")
	}
	if o.sessionSweep != "" && o.prefixCaches == "" {
		return fmt.Errorf("-session-sweep only applies to the -prefix-caches grid mode")
	}
	// The fault flags: -fault-mtbfs/-fault-mttrs come as a pair and
	// select the fault-grid mode; an explicit -faults schedule runs the
	// standard matrix on a single node count. Neither composes with the
	// other grid modes.
	if (o.faultMTBFs != "") != (o.faultMTTRs != "") {
		return fmt.Errorf("-fault-mtbfs and -fault-mttrs (fault-grid mode) come as a pair, got one without the other")
	}
	if (o.faultDetectSet || o.faultCountSet) && o.faultMTBFs == "" {
		return fmt.Errorf("-fault-detect/-fault-count only apply to the -fault-mtbfs grid mode (a single run's detection latency goes in the -faults spec)")
	}
	if faults.Enabled() || o.faultMTBFs != "" {
		what := "-faults"
		if o.faultMTBFs != "" {
			what = "-fault-mtbfs"
		}
		switch {
		case faults.Enabled() && o.faultMTBFs != "":
			return fmt.Errorf("-faults (explicit schedule) and -fault-mtbfs (fault grid) select different modes, pick one")
		case o.rates != "" || o.prefixCaches != "":
			return fmt.Errorf("%s does not compose with the -rates/-prefix-caches grid modes", what)
		case len(nodeCounts) != 1:
			return fmt.Errorf("%s names fleet-relative node indices and takes a single -nodes count, got %v", what, nodeCounts)
		}
	}
	if o.rates != "" {
		return runOverloadGrid(o, ccfg, nodeCounts, routerPols, cachePol, preemptPol, overload, slo, opts)
	}
	if o.prefixCaches != "" {
		return runPrefixGrid(o, ccfg, nodeCounts, routerPols, cachePol, opts)
	}
	if o.faultMTBFs != "" {
		return runFaultGrid(o, ccfg, nodeCounts, routerPols, cachePol, slo, opts)
	}

	if err := trace.Validate(len(nodeCounts)*len(routerPols) > 1); err != nil {
		return err
	}
	if err := telemetry.ValidateOutPath("-hwprof-out", o.hwprofOut, len(nodeCounts)*len(routerPols) > 1); err != nil {
		return err
	}
	scn, err := cluster.NewScenario(ccfg)
	if err != nil {
		return err
	}
	grid, err := experiments.ClusterGridFaulty(scn, nodeCounts, routerPols, cachePol, overload, faults, opts)
	if err != nil {
		return err
	}
	if o.jsonOut {
		return writeJSON(grid, sched, o.scale, slo)
	}
	fmt.Print(grid.Render())
	if slo.Enabled() {
		for i, n := range grid.NodeCounts {
			for j, r := range grid.Routers {
				fmt.Printf("\ngoodput under SLO [nodes=%d %s]\n%s", n, r, grid.Metrics[i][j].Goodput(slo))
			}
		}
	}
	// With no -hwprof-out the full per-cell fleet profile reports
	// follow the table on stdout (the grid runner wrote them to files
	// otherwise).
	if o.hwprof && o.hwprofOut == "" {
		for i, n := range grid.NodeCounts {
			for j, r := range grid.Routers {
				if hw := grid.Metrics[i][j].HW; hw != nil {
					fmt.Printf("\n[nodes=%d %s]\n%s", n, r, hw.Render())
				}
			}
		}
	}
	return nil
}

// runOverloadGrid is the -rates mode: one fleet shape swept across
// arrival-rate multipliers × overload-control combos, reporting the
// goodput-vs-load curves. The combo ladder is built from the flags:
// the uncontrolled baseline, plus preemption (-preempt), shedding
// (-shed) and their combination when both are set.
func runOverloadGrid(o cliOpts, ccfg cluster.ScenarioConfig, nodeCounts []int, routerPols []cluster.Policy,
	cachePol experiments.Policy, preemptPol serving.PreemptPolicy, overload cluster.OverloadConfig,
	slo serving.SLO, opts experiments.Options) error {
	rates, err := parseRates(o.rates)
	if err != nil {
		return err
	}
	if len(nodeCounts) != 1 {
		return fmt.Errorf("-rates (overload-grid mode) takes a single -nodes count, got %v", nodeCounts)
	}
	if len(routerPols) != 1 {
		return fmt.Errorf("-rates (overload-grid mode) takes a single -routers policy, got %d", len(routerPols))
	}
	combos := []experiments.OverloadCombo{{Label: "none"}}
	if preemptPol != serving.PreemptOff {
		combos = append(combos, experiments.OverloadCombo{Label: "preempt:" + preemptPol.String(), Preempt: preemptPol})
	}
	if overload.Enabled() {
		combos = append(combos, experiments.OverloadCombo{Label: "shed:" + overload.String(), Shed: overload})
		if preemptPol != serving.PreemptOff {
			combos = append(combos, experiments.OverloadCombo{Label: "preempt+shed", Preempt: preemptPol, Shed: overload})
		}
	}
	if len(combos) == 1 {
		return fmt.Errorf("-rates (overload-grid mode) needs -preempt and/or -shed to compare against the uncontrolled baseline")
	}
	if err := opts.Trace.Validate(len(rates)*len(combos) > 1); err != nil {
		return err
	}
	if err := telemetry.ValidateOutPath("-hwprof-out", o.hwprofOut, len(rates)*len(combos) > 1); err != nil {
		return err
	}
	grid, err := experiments.OverloadGrid(ccfg, rates, combos, nodeCounts[0], routerPols[0], cachePol, slo, opts)
	if err != nil {
		return err
	}
	if o.jsonOut {
		return writeOverloadJSON(grid, o.scale)
	}
	fmt.Print(grid.Render())
	return nil
}

// runFaultGrid is the -fault-mtbfs/-fault-mttrs mode: one fleet shape
// swept across an MTBF × MTTR matrix of generated failure regimes,
// each cell run under both recovery policies (redispatch and drop),
// reporting goodput per regime. The crash schedules are generated from
// -seed, with -fault-count incidents per schedule and -fault-detect
// cycles of detection latency.
func runFaultGrid(o cliOpts, ccfg cluster.ScenarioConfig, nodeCounts []int, routerPols []cluster.Policy,
	cachePol experiments.Policy, slo serving.SLO, opts experiments.Options) error {
	mtbfs, err := parseFaultTimes("-fault-mtbfs", o.faultMTBFs)
	if err != nil {
		return err
	}
	mttrs, err := parseFaultTimes("-fault-mttrs", o.faultMTTRs)
	if err != nil {
		return err
	}
	if o.faultDetect < 0 {
		return fmt.Errorf("-fault-detect must be non-negative, got %d", o.faultDetect)
	}
	if o.faultCount <= 0 {
		return fmt.Errorf("-fault-count must be positive, got %d", o.faultCount)
	}
	if len(routerPols) != 1 {
		return fmt.Errorf("-fault-mtbfs (fault-grid mode) takes a single -routers policy, got %d", len(routerPols))
	}
	if err := opts.Trace.Validate(2*len(mtbfs)*len(mttrs) > 1); err != nil {
		return err
	}
	if err := telemetry.ValidateOutPath("-hwprof-out", o.hwprofOut, 2*len(mtbfs)*len(mttrs) > 1); err != nil {
		return err
	}
	grid, err := experiments.FaultGrid(ccfg, mtbfs, mttrs, o.seed, o.faultCount, o.faultDetect,
		nodeCounts[0], routerPols[0], cachePol, slo, opts)
	if err != nil {
		return err
	}
	if o.jsonOut {
		return writeFaultJSON(grid, o.scale)
	}
	fmt.Print(grid.Render())
	return nil
}

// parseFaultTimes reads one of the fault-grid time axes, rejecting
// non-positive and non-finite values up front (like parseRates, a NaN
// would slip past a plain <= 0 check).
func parseFaultTimes(name, list string) ([]float64, error) {
	var out []float64
	for _, s := range strings.Split(list, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid %s entry %q: %v", name, s, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return nil, fmt.Errorf("%s entries must be positive and finite, got %v", name, v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty %s list", name)
	}
	return out, nil
}

// runPrefixGrid is the -prefix-caches mode: one fleet shape swept
// across session locality (-session-sweep, defaulting to the single
// -sessions count) × per-node prefix-cache capacity × router,
// reporting the TTFT-vs-router curves of the prefix-reuse study. Each
// cell regenerates the workload at its session count, so the same seed
// explores the same population at every locality point.
func runPrefixGrid(o cliOpts, ccfg cluster.ScenarioConfig, nodeCounts []int, routerPols []cluster.Policy,
	cachePol experiments.Policy, opts experiments.Options) error {
	caches, err := parseCaches(o.prefixCaches)
	if err != nil {
		return err
	}
	sessions := []int{o.sessions}
	if o.sessionSweep != "" {
		if sessions, err = parseSessionSweep(o.sessionSweep); err != nil {
			return err
		}
	}
	if len(nodeCounts) != 1 {
		return fmt.Errorf("-prefix-caches (prefix-grid mode) takes a single -nodes count, got %v", nodeCounts)
	}
	if err := opts.Trace.Validate(len(sessions)*len(caches)*len(routerPols) > 1); err != nil {
		return err
	}
	if err := telemetry.ValidateOutPath("-hwprof-out", o.hwprofOut, len(sessions)*len(caches)*len(routerPols) > 1); err != nil {
		return err
	}
	grid, err := experiments.PrefixGrid(ccfg, sessions, caches, routerPols, nodeCounts[0], cachePol, opts)
	if err != nil {
		return err
	}
	if o.jsonOut {
		return writePrefixJSON(grid, o.scale)
	}
	fmt.Print(grid.Render())
	return nil
}

// jsonCell is one (node count, router) cell of the -json document.
type jsonCell struct {
	Nodes   int              `json:"nodes"`
	Router  string           `json:"router"`
	Metrics *cluster.Metrics `json:"metrics"`
	// Counters re-exports every node's raw whole-run hardware counters
	// at the top level, node order, so scripts consuming profiles read
	// them without digging through the nested per-node metrics.
	Counters []stats.Counters `json:"counters"`
	// Goodput is present when an SLO deadline was set.
	Goodput *serving.SLOReport `json:"goodput,omitempty"`
}

// perNodeCounters extracts the raw per-node counter blocks of a fleet
// run in node order — the scriptable profile block every -json writer
// attaches to its cells.
func perNodeCounters(m *cluster.Metrics) []stats.Counters {
	out := make([]stats.Counters, len(m.PerNode))
	for i, nm := range m.PerNode {
		out[i] = nm.Counters
	}
	return out
}

// jsonDoc is the -json report: the scenario identity plus every
// cell's full fleet metrics (TTFT percentiles included).
type jsonDoc struct {
	Scenario  string     `json:"scenario"`
	Requests  int        `json:"requests"`
	Scale     int        `json:"scale"`
	Scheduler string     `json:"scheduler"`
	Policy    string     `json:"policy"`
	Cells     []jsonCell `json:"cells"`
}

// writeJSON emits the grid as an indented JSON document on stdout.
func writeJSON(grid *experiments.ClusterGridResult, sched serving.SchedulerConfig, scale int, slo serving.SLO) error {
	doc := jsonDoc{
		Scenario:  grid.Scenario.Name,
		Requests:  len(grid.Scenario.Requests),
		Scale:     scale,
		Scheduler: experiments.SchedLabel(sched),
		Policy:    grid.Pol.Label,
	}
	for i, n := range grid.NodeCounts {
		for j, r := range grid.Routers {
			cell := jsonCell{Nodes: n, Router: r.String(), Metrics: grid.Metrics[i][j],
				Counters: perNodeCounters(grid.Metrics[i][j])}
			if slo.Enabled() {
				rep := grid.Metrics[i][j].Goodput(slo)
				cell.Goodput = &rep
			}
			doc.Cells = append(doc.Cells, cell)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// prefixJSONCell is one (sessions, cache, router) cell of the
// prefix-grid -json document.
type prefixJSONCell struct {
	Sessions int              `json:"sessions"`
	Cache    int64            `json:"cache_tokens"`
	Router   string           `json:"router"`
	Metrics  *cluster.Metrics `json:"metrics"`
	// Counters is every node's raw whole-run counter block, node order.
	Counters []stats.Counters `json:"counters"`
}

// prefixJSONDoc is the prefix-grid -json report.
type prefixJSONDoc struct {
	Workload     string           `json:"workload"`
	Nodes        int              `json:"nodes"`
	SessionDepth int              `json:"session_depth"`
	Policy       string           `json:"policy"`
	Scale        int              `json:"scale"`
	Cells        []prefixJSONCell `json:"cells"`
}

// writePrefixJSON emits the prefix grid as an indented JSON document
// on stdout.
func writePrefixJSON(grid *experiments.PrefixGridResult, scale int) error {
	doc := prefixJSONDoc{
		Workload:     grid.Config.Name,
		Nodes:        grid.Nodes,
		SessionDepth: grid.Config.SessionDepth,
		Policy:       grid.Pol.Label,
		Scale:        scale,
	}
	for i, s := range grid.Sessions {
		for j, c := range grid.Caches {
			for k, rt := range grid.Routers {
				doc.Cells = append(doc.Cells, prefixJSONCell{
					Sessions: s, Cache: c, Router: rt.String(),
					Metrics:  grid.Cells[i][j][k].Metrics,
					Counters: perNodeCounters(grid.Cells[i][j][k].Metrics),
				})
			}
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// faultJSONCell is one (mtbf, mttr, recovery) cell of the fault-grid
// -json document.
type faultJSONCell struct {
	MTBF     float64          `json:"mtbf"`
	MTTR     float64          `json:"mttr"`
	Recovery string           `json:"recovery"`
	Metrics  *cluster.Metrics `json:"metrics"`
	// Counters is every node's raw whole-run counter block, node order.
	Counters []stats.Counters   `json:"counters"`
	Goodput  *serving.SLOReport `json:"goodput"`
}

// faultJSONDoc is the fault-grid -json report.
type faultJSONDoc struct {
	Workload string          `json:"workload"`
	Nodes    int             `json:"nodes"`
	Router   string          `json:"router"`
	Policy   string          `json:"policy"`
	Scale    int             `json:"scale"`
	Seed     uint64          `json:"seed"`
	Count    int             `json:"fault_count"`
	Detect   int64           `json:"detect_cycles"`
	SLO      serving.SLO     `json:"slo"`
	Cells    []faultJSONCell `json:"cells"`
}

// writeFaultJSON emits the fault grid as an indented JSON document on
// stdout.
func writeFaultJSON(grid *experiments.FaultGridResult, scale int) error {
	doc := faultJSONDoc{
		Workload: grid.Config.Name,
		Nodes:    grid.Nodes,
		Router:   grid.Router.String(),
		Policy:   grid.Pol.Label,
		Scale:    scale,
		Seed:     grid.Seed,
		Count:    grid.Count,
		Detect:   grid.Detect,
		SLO:      grid.SLO,
	}
	for i, mtbf := range grid.MTBFs {
		for j, mttr := range grid.MTTRs {
			cell := grid.Cells[i][j]
			re, dr := cell.Redispatch.Goodput, cell.Drop.Goodput
			doc.Cells = append(doc.Cells,
				faultJSONCell{MTBF: mtbf, MTTR: mttr, Recovery: "redispatch", Metrics: cell.Redispatch.Metrics,
					Counters: perNodeCounters(cell.Redispatch.Metrics), Goodput: &re},
				faultJSONCell{MTBF: mtbf, MTTR: mttr, Recovery: "drop", Metrics: cell.Drop.Metrics,
					Counters: perNodeCounters(cell.Drop.Metrics), Goodput: &dr})
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// overloadJSONCell is one (rate, combo) cell of the overload-grid
// -json document.
type overloadJSONCell struct {
	Rate    float64          `json:"rate"`
	Combo   string           `json:"combo"`
	Metrics *cluster.Metrics `json:"metrics"`
	// Counters is every node's raw whole-run counter block, node order.
	Counters []stats.Counters   `json:"counters"`
	Goodput  *serving.SLOReport `json:"goodput"`
}

// overloadJSONDoc is the overload-grid -json report.
type overloadJSONDoc struct {
	Workload string             `json:"workload"`
	Nodes    int                `json:"nodes"`
	Router   string             `json:"router"`
	Policy   string             `json:"policy"`
	Scale    int                `json:"scale"`
	SLO      serving.SLO        `json:"slo"`
	Cells    []overloadJSONCell `json:"cells"`
}

// writeOverloadJSON emits the overload grid as an indented JSON
// document on stdout.
func writeOverloadJSON(grid *experiments.OverloadGridResult, scale int) error {
	doc := overloadJSONDoc{
		Workload: grid.Config.Name,
		Nodes:    grid.Nodes,
		Router:   grid.Router.String(),
		Policy:   grid.Pol.Label,
		Scale:    scale,
		SLO:      grid.SLO,
	}
	for i, rate := range grid.Rates {
		for j, combo := range grid.Combos {
			cell := grid.Cells[i][j]
			rep := cell.Goodput
			doc.Cells = append(doc.Cells, overloadJSONCell{
				Rate: rate, Combo: combo.Label, Metrics: cell.Metrics,
				Counters: perNodeCounters(cell.Metrics), Goodput: &rep,
			})
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
