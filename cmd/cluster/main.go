// Command cluster runs fleet-scale serving scenarios: an open-loop
// request stream dispatched by a router to N simulated nodes, each a
// full continuous-batching engine on its own cycle-level simulator.
// This is the production regime above cmd/serve — the question is no
// longer only how one accelerator behaves under batched decode
// traffic, but how routing policy spreads that traffic across a
// fleet, and how the answer interacts with the paper's cache
// arbitration/throttling policies running on every node.
//
//	cluster                                   # stock 16-request fleet, 4 routers × {1,2,4} nodes
//	cluster -nodes 8 -routers p2c,affinity    # narrower matrix
//	cluster -streams 32 -sessions 8 -rate 8000
//	cluster -policy dynmg+BMA -model mix -av  # cache policy / workload knobs
//
// Workload flags (-streams, -sessions, -seqmin/-seqmax,
// -tokmin/-tokmax, -rate, -seed) shape the fixed-seed request
// population; -nodes and -routers shape the evaluation matrix;
// -policy selects the cache-level (throttle+arbiter) policy every
// node runs; -scale divides the prompt-length range and the L2 size
// together, like every other harness; -stepcache selects the
// token-step fast path (on = signature memo shared across the fleet's
// nodes and the grid's cells, nomemo = no memoized replay, off = the
// naive reference pipeline); -cpuprofile/-memprofile capture pprof
// profiles of the run. Runs are deterministic for a fixed flag set at
// any -parallel width (modulo the step-cache hit-rate diagnostics,
// which depend on fan-out timing).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/profiling"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		streams    = flag.Int("streams", 16, "number of decode requests in the fleet scenario")
		sessions   = flag.Int("sessions", 4, "distinct sessions the requests are drawn from (0 = one per request)")
		batch      = flag.Int("batch", 4, "per-node continuous-batching capacity")
		nodes      = flag.String("nodes", "1,2,4", "comma-separated node counts to evaluate")
		routers    = flag.String("routers", "all", "comma-separated router policies (round-robin, least-outstanding, p2c, affinity) or 'all'")
		policy     = flag.String("policy", "dynmg+BMA", "cache policy every node runs (throttle+arbiter)")
		model      = flag.String("model", "70b", "request model mix: 70b, 405b or mix")
		seqmin     = flag.Int("seqmin", 0, "min prompt length (0 = 512/scale)")
		seqmax     = flag.Int("seqmax", 0, "max prompt length (0 = 2048/scale)")
		tokmin     = flag.Int("tokmin", 4, "min tokens decoded per request")
		tokmax     = flag.Int("tokmax", 8, "max tokens decoded per request")
		rate       = flag.Float64("rate", 15000, "mean inter-arrival gap in cycles (0 = all arrive at cycle 0)")
		seed       = flag.Uint64("seed", 1, "arrival-process seed")
		av         = flag.Bool("av", false, "append the AV operator to every token step")
		scale      = flag.Int("scale", 8, "divide default prompt lengths and the L2 size by this factor")
		parallel   = flag.Int("parallel", 0, "concurrent cells / node engines (0 = GOMAXPROCS)")
		verbose    = flag.Bool("v", false, "stream per-cell progress to stderr")
		stepcache  = flag.String("stepcache", "on", "token-step fast path: on, nomemo or off (the naive reference)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		os.Exit(1)
	}

	err = run(*streams, *sessions, *batch, *nodes, *routers, *policy, *model,
		*seqmin, *seqmax, *tokmin, *tokmax, *rate, *seed, *av, *scale, *parallel,
		*verbose, *stepcache)

	// Flush the profiles before the error exit below: os.Exit skips
	// defers, which would truncate them.
	stopCPU()
	if merr := profiling.WriteHeap(*memprofile); merr != nil {
		fmt.Fprintln(os.Stderr, "cluster:", merr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		os.Exit(1)
	}
}

func modelMix(name string) ([]workload.ModelConfig, error) {
	switch name {
	case "70b":
		return []workload.ModelConfig{workload.Llama3_70B}, nil
	case "405b":
		return []workload.ModelConfig{workload.Llama3_405B}, nil
	case "mix":
		return []workload.ModelConfig{workload.Llama3_70B, workload.Llama3_405B}, nil
	}
	return nil, fmt.Errorf("unknown model mix %q", name)
}

// parseNodes reads the -nodes list, rejecting non-positive counts up
// front — a zero node count would otherwise surface as a deep
// simulator error (or, with a naive modulo router, a panic).
func parseNodes(list string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(list, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		n, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("invalid -nodes entry %q: %v", s, err)
		}
		if n <= 0 {
			return nil, fmt.Errorf("-nodes entries must be positive, got %d", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -nodes list")
	}
	return out, nil
}

func parseRouters(list string) ([]cluster.Policy, error) {
	if list == "all" {
		return cluster.Policies(), nil
	}
	var out []cluster.Policy
	for _, s := range strings.Split(list, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		p, err := cluster.ParsePolicy(s)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -routers list")
	}
	return out, nil
}

func run(streams, sessions, batch int, nodeList, routerList, policy, model string,
	seqmin, seqmax, tokmin, tokmax int, rate float64, seed uint64, av bool,
	scale, parallel int, verbose bool, stepcache string) error {
	mode, err := serving.ParseStepCacheMode(stepcache)
	if err != nil {
		return err
	}
	// Validate the workload shape up front with flag-level messages
	// instead of letting a deep generator or engine error (or hang)
	// report it.
	switch {
	case streams <= 0:
		return fmt.Errorf("-streams must be positive, got %d", streams)
	case batch <= 0:
		return fmt.Errorf("-batch must be positive, got %d", batch)
	case sessions < 0:
		return fmt.Errorf("-sessions must be non-negative, got %d", sessions)
	case tokmin <= 0 || tokmax < tokmin:
		return fmt.Errorf("decode range [-tokmin %d, -tokmax %d] invalid", tokmin, tokmax)
	case rate < 0:
		return fmt.Errorf("-rate must be non-negative, got %v", rate)
	}
	if scale <= 0 {
		scale = 1
	}
	nodeCounts, err := parseNodes(nodeList)
	if err != nil {
		return err
	}
	routerPols, err := parseRouters(routerList)
	if err != nil {
		return err
	}
	pol, err := llamcat.ParsePolicy(policy)
	if err != nil {
		return err
	}
	models, err := modelMix(model)
	if err != nil {
		return err
	}
	// Computed defaults clamp to the mapping floor like
	// cluster.DefaultScenario; explicit values are validated as given.
	if seqmin == 0 {
		if seqmin = 512 / scale; seqmin < 16 {
			seqmin = 16
		}
	}
	if seqmax == 0 {
		if seqmax = 2048 / scale; seqmax < seqmin {
			seqmax = seqmin
		}
	}
	scn, err := cluster.NewScenario(cluster.ScenarioConfig{
		ScenarioConfig: serving.ScenarioConfig{
			Name:             fmt.Sprintf("%s/%dreq/seed%d", model, streams, seed),
			Seed:             seed,
			NumRequests:      streams,
			Models:           models,
			MinPromptLen:     seqmin,
			MaxPromptLen:     seqmax,
			MinDecode:        tokmin,
			MaxDecode:        tokmax,
			MeanInterArrival: rate,
			MaxBatch:         batch,
			IncludeAV:        av,
		},
		NumSessions: sessions,
	})
	if err != nil {
		return err
	}

	base := sim.DefaultConfig()
	opts := experiments.Options{Base: &base, Scale: scale, Parallel: parallel, StepCache: mode}
	if verbose {
		opts.Log = os.Stderr
	}
	grid, err := experiments.ClusterGrid(scn, nodeCounts, routerPols,
		experiments.Policy{Label: policy, Throttle: pol.Throttle, Arbiter: pol.Arbiter}, opts)
	if err != nil {
		return err
	}
	fmt.Print(grid.Render())
	return nil
}
