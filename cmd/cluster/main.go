// Command cluster runs fleet-scale serving scenarios: an open-loop
// request stream dispatched by a router to N simulated nodes, each a
// full continuous-batching engine on its own cycle-level simulator.
// This is the production regime above cmd/serve — the question is no
// longer only how one accelerator behaves under batched decode
// traffic, but how routing policy spreads that traffic across a
// fleet, and how the answer interacts with the paper's cache
// arbitration/throttling policies running on every node.
//
//	cluster                                   # stock 16-request fleet, 5 routers × {1,2,4} nodes
//	cluster -nodes 8 -routers p2c,affinity    # narrower matrix
//	cluster -streams 32 -sessions 8 -rate 8000
//	cluster -policy dynmg+BMA -model mix -av  # cache policy / workload knobs
//	cluster -sched chunked -chunk 32 -routers ttft-pressure,least-outstanding
//	cluster -json                             # machine-readable fleet metrics
//
// Workload flags (-streams, -sessions, -seqmin/-seqmax,
// -tokmin/-tokmax, -rate, -seed) shape the fixed-seed request
// population; scheduler flags (-sched, -chunk, -kvcap) select every
// node's prefill/decode co-scheduling policy, prefill chunk size and
// KV-capacity admission bound (the ttft-pressure router balances on
// the prefill backlog these schedulers create); -nodes and -routers
// shape the evaluation matrix; -policy selects the cache-level
// (throttle+arbiter) policy every node runs; -scale divides the
// prompt-length range and the L2 size together, like every other
// harness; -stepcache selects the token-step fast path (on =
// signature memo shared across the fleet's nodes and the grid's
// cells, nomemo = no memoized replay, off = the naive reference
// pipeline); -json switches the report from the aligned table to a
// JSON document of the full per-cell fleet metrics (TTFT percentiles
// included); -cpuprofile/-memprofile capture pprof profiles of the
// run. Runs are deterministic for a fixed flag set at any -parallel
// width (modulo the step-cache hit-rate diagnostics, which depend on
// fan-out timing).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/profiling"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/workload"
)

// cliOpts carries the parsed flag set into run.
type cliOpts struct {
	streams, sessions, batch       int
	nodes, routers, policy, model  string
	seqmin, seqmax, tokmin, tokmax int
	rate                           float64
	seed                           uint64
	av                             bool
	scale                          int
	sched                          string
	chunk                          int
	kvcap                          int64
	parallel                       int
	verbose, jsonOut               bool
	stepcache                      string
}

func main() {
	var o cliOpts
	flag.IntVar(&o.streams, "streams", 16, "number of decode requests in the fleet scenario")
	flag.IntVar(&o.sessions, "sessions", 4, "distinct sessions the requests are drawn from (0 = one per request)")
	flag.IntVar(&o.batch, "batch", 4, "per-node continuous-batching capacity")
	flag.StringVar(&o.nodes, "nodes", "1,2,4", "comma-separated node counts to evaluate")
	flag.StringVar(&o.routers, "routers", "all", "comma-separated router policies (round-robin, least-outstanding, p2c, affinity, ttft-pressure) or 'all'")
	flag.StringVar(&o.policy, "policy", "dynmg+BMA", "cache policy every node runs (throttle+arbiter)")
	flag.StringVar(&o.model, "model", "70b", "request model mix: 70b, 405b or mix")
	flag.IntVar(&o.seqmin, "seqmin", 0, "min prompt length (0 = 512/scale)")
	flag.IntVar(&o.seqmax, "seqmax", 0, "max prompt length (0 = 2048/scale)")
	flag.IntVar(&o.tokmin, "tokmin", 4, "min tokens decoded per request")
	flag.IntVar(&o.tokmax, "tokmax", 8, "max tokens decoded per request")
	flag.Float64Var(&o.rate, "rate", 15000, "mean inter-arrival gap in cycles (0 = all arrive at cycle 0)")
	flag.Uint64Var(&o.seed, "seed", 1, "arrival-process seed")
	flag.BoolVar(&o.av, "av", false, "append the AV operator to every token step")
	flag.IntVar(&o.scale, "scale", 8, "divide default prompt lengths and the L2 size by this factor")
	flag.StringVar(&o.sched, "sched", "decode-only", "prefill scheduler every node runs: decode-only, prefill-first or chunked")
	flag.IntVar(&o.chunk, "chunk", 32, "prefill chunk size in tokens (chunked scheduler only)")
	flag.Int64Var(&o.kvcap, "kvcap", 0, "per-node KV-cache capacity in tokens, gating admission (0 = unlimited)")
	flag.IntVar(&o.parallel, "parallel", 0, "concurrent cells / node engines (0 = GOMAXPROCS)")
	flag.BoolVar(&o.verbose, "v", false, "stream per-cell progress to stderr")
	flag.BoolVar(&o.jsonOut, "json", false, "emit machine-readable JSON metrics instead of the table")
	flag.StringVar(&o.stepcache, "stepcache", "on", "token-step fast path: on, nomemo or off (the naive reference)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		os.Exit(1)
	}

	err = run(o)

	// Flush the profiles before the error exit below: os.Exit skips
	// defers, which would truncate them.
	stopCPU()
	if merr := profiling.WriteHeap(*memprofile); merr != nil {
		fmt.Fprintln(os.Stderr, "cluster:", merr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		os.Exit(1)
	}
}

// chunkFlagSet reports whether -chunk was passed explicitly, so a
// contradictory -sched/-chunk combination errors instead of silently
// ignoring the chunk size.
func chunkFlagSet() bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "chunk" {
			set = true
		}
	})
	return set
}

func modelMix(name string) ([]workload.ModelConfig, error) {
	switch name {
	case "70b":
		return []workload.ModelConfig{workload.Llama3_70B}, nil
	case "405b":
		return []workload.ModelConfig{workload.Llama3_405B}, nil
	case "mix":
		return []workload.ModelConfig{workload.Llama3_70B, workload.Llama3_405B}, nil
	}
	return nil, fmt.Errorf("unknown model mix %q", name)
}

// parseNodes reads the -nodes list, rejecting non-positive counts up
// front — a zero node count would otherwise surface as a deep
// simulator error (or, with a naive modulo router, a panic).
func parseNodes(list string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(list, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		n, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("invalid -nodes entry %q: %v", s, err)
		}
		if n <= 0 {
			return nil, fmt.Errorf("-nodes entries must be positive, got %d", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -nodes list")
	}
	return out, nil
}

func parseRouters(list string) ([]cluster.Policy, error) {
	if list == "all" {
		return cluster.Policies(), nil
	}
	var out []cluster.Policy
	for _, s := range strings.Split(list, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		p, err := cluster.ParsePolicy(s)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -routers list")
	}
	return out, nil
}

func run(o cliOpts) error {
	mode, err := serving.ParseStepCacheMode(o.stepcache)
	if err != nil {
		return err
	}
	schedPol, err := serving.ParseSchedPolicy(o.sched)
	if err != nil {
		return err
	}
	// Validate the workload shape up front with flag-level messages
	// instead of letting a deep generator or engine error (or hang)
	// report it.
	switch {
	case o.streams <= 0:
		return fmt.Errorf("-streams must be positive, got %d", o.streams)
	case o.batch <= 0:
		return fmt.Errorf("-batch must be positive, got %d", o.batch)
	case o.sessions < 0:
		return fmt.Errorf("-sessions must be non-negative, got %d", o.sessions)
	case o.tokmin <= 0 || o.tokmax < o.tokmin:
		return fmt.Errorf("decode range [-tokmin %d, -tokmax %d] invalid", o.tokmin, o.tokmax)
	case o.rate < 0:
		return fmt.Errorf("-rate must be non-negative, got %v", o.rate)
	case o.kvcap < 0:
		return fmt.Errorf("-kvcap must be non-negative, got %d", o.kvcap)
	}
	sched := serving.SchedulerConfig{Policy: schedPol, KVCapTokens: o.kvcap}
	if schedPol == serving.SchedChunked {
		sched.ChunkTokens = o.chunk
	} else if chunkFlagSet() {
		return fmt.Errorf("-chunk only applies to -sched chunked (got -sched %s)", schedPol)
	}
	if err := sched.Validate(); err != nil {
		return err
	}
	if o.scale <= 0 {
		o.scale = 1
	}
	nodeCounts, err := parseNodes(o.nodes)
	if err != nil {
		return err
	}
	routerPols, err := parseRouters(o.routers)
	if err != nil {
		return err
	}
	pol, err := llamcat.ParsePolicy(o.policy)
	if err != nil {
		return err
	}
	models, err := modelMix(o.model)
	if err != nil {
		return err
	}
	// Computed defaults clamp to the mapping floor like
	// cluster.DefaultScenario; explicit values are validated as given.
	if o.seqmin == 0 {
		if o.seqmin = 512 / o.scale; o.seqmin < 16 {
			o.seqmin = 16
		}
	}
	if o.seqmax == 0 {
		if o.seqmax = 2048 / o.scale; o.seqmax < o.seqmin {
			o.seqmax = o.seqmin
		}
	}
	scn, err := cluster.NewScenario(cluster.ScenarioConfig{
		ScenarioConfig: serving.ScenarioConfig{
			Name:             fmt.Sprintf("%s/%dreq/seed%d", o.model, o.streams, o.seed),
			Seed:             o.seed,
			NumRequests:      o.streams,
			Models:           models,
			MinPromptLen:     o.seqmin,
			MaxPromptLen:     o.seqmax,
			MinDecode:        o.tokmin,
			MaxDecode:        o.tokmax,
			MeanInterArrival: o.rate,
			MaxBatch:         o.batch,
			IncludeAV:        o.av,
			Sched:            sched,
		},
		NumSessions: o.sessions,
	})
	if err != nil {
		return err
	}

	base := sim.DefaultConfig()
	opts := experiments.Options{Base: &base, Scale: o.scale, Parallel: o.parallel, StepCache: mode}
	if o.verbose {
		opts.Log = os.Stderr
	}
	grid, err := experiments.ClusterGrid(scn, nodeCounts, routerPols,
		experiments.Policy{Label: o.policy, Throttle: pol.Throttle, Arbiter: pol.Arbiter}, opts)
	if err != nil {
		return err
	}
	if o.jsonOut {
		return writeJSON(grid, sched, o.scale)
	}
	fmt.Print(grid.Render())
	return nil
}

// jsonCell is one (node count, router) cell of the -json document.
type jsonCell struct {
	Nodes   int              `json:"nodes"`
	Router  string           `json:"router"`
	Metrics *cluster.Metrics `json:"metrics"`
}

// jsonDoc is the -json report: the scenario identity plus every
// cell's full fleet metrics (TTFT percentiles included).
type jsonDoc struct {
	Scenario  string     `json:"scenario"`
	Requests  int        `json:"requests"`
	Scale     int        `json:"scale"`
	Scheduler string     `json:"scheduler"`
	Policy    string     `json:"policy"`
	Cells     []jsonCell `json:"cells"`
}

// writeJSON emits the grid as an indented JSON document on stdout.
func writeJSON(grid *experiments.ClusterGridResult, sched serving.SchedulerConfig, scale int) error {
	doc := jsonDoc{
		Scenario:  grid.Scenario.Name,
		Requests:  len(grid.Scenario.Requests),
		Scale:     scale,
		Scheduler: experiments.SchedLabel(sched),
		Policy:    grid.Pol.Label,
	}
	for i, n := range grid.NodeCounts {
		for j, r := range grid.Routers {
			doc.Cells = append(doc.Cells, jsonCell{Nodes: n, Router: r.String(), Metrics: grid.Metrics[i][j]})
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
