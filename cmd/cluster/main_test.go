package main

import (
	"os"
	"reflect"
	"strings"
	"testing"
)

// defaultOpts mirrors the flag defaults in main so each case can
// perturb exactly one knob.
func defaultOpts() cliOpts {
	return cliOpts{
		streams: 16, sessions: 4, batch: 4,
		nodes: "1,2,4", routers: "all",
		policy: "dynmg+BMA", model: "70b",
		tokmin: 4, tokmax: 8, rate: 15000,
		seed: 1, scale: 8,
		sched: "decode-only", chunk: 32,
		arrival: "poisson", preempt: "off", shed: "off",
		faults: "off", faultCount: 3,
		stepcache: "on",
	}
}

// swallowStdout diverts the process stdout to the null device so a
// successful run's report does not pollute the test output; the
// returned func restores it.
func swallowStdout(t *testing.T) func() {
	t.Helper()
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	return func() {
		os.Stdout = old
		null.Close()
	}
}

// TestRunValidation: every malformed flag combination is rejected by
// run with a flag-level message before any simulation starts.
func TestRunValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*cliOpts)
		want string
	}{
		{"zero streams", func(o *cliOpts) { o.streams = 0 }, "-streams"},
		{"zero batch", func(o *cliOpts) { o.batch = 0 }, "-batch"},
		{"negative sessions", func(o *cliOpts) { o.sessions = -1 }, "-sessions"},
		{"inverted decode range", func(o *cliOpts) { o.tokmin = 8; o.tokmax = 4 }, "-tokmin"},
		{"negative rate", func(o *cliOpts) { o.rate = -1 }, "-rate"},
		{"negative kvcap", func(o *cliOpts) { o.kvcap = -1 }, "-kvcap"},
		{"bad model", func(o *cliOpts) { o.model = "13b" }, "model mix"},
		{"bad sched", func(o *cliOpts) { o.sched = "fifo" }, "scheduler"},
		{"bad stepcache", func(o *cliOpts) { o.stepcache = "maybe" }, "step-cache"},
		{"bad nodes entry", func(o *cliOpts) { o.nodes = "1,x" }, "-nodes"},
		{"zero node count", func(o *cliOpts) { o.nodes = "0" }, "-nodes"},
		{"empty nodes list", func(o *cliOpts) { o.nodes = " , " }, "-nodes"},
		{"bad router", func(o *cliOpts) { o.routers = "random" }, "router"},
		{"empty routers list", func(o *cliOpts) { o.routers = " , " }, "-routers"},
		{"bad arrival spec", func(o *cliOpts) { o.arrival = "burst:100:0.5" }, "burst"},
		{"bad preempt policy", func(o *cliOpts) { o.preempt = "oldest" }, "preempt"},
		{"preempt without kvcap", func(o *cliOpts) { o.sched = "chunked"; o.preempt = "newest" }, "KV"},
		{"bad shed spec", func(o *cliOpts) { o.shed = "400:3:500:sideways" }, "shed spec"},
		{"zero shed saturation", func(o *cliOpts) { o.shed = "0" }, "saturation"},
		{"negative slo-ttft", func(o *cliOpts) { o.sloTTFT = -5 }, "-slo-ttft"},
		{"explicit zero slo-ttft", func(o *cliOpts) { o.sloTTFTSet = true }, "-slo-ttft"},
		{"negative slo-tbt", func(o *cliOpts) { o.sloTBT = -0.5 }, "-slo-tbt"},
		{"explicit zero slo-tbt", func(o *cliOpts) { o.sloTBTSet = true }, "-slo-tbt"},
		{"bad cache policy", func(o *cliOpts) { o.policy = "bogus" }, "bogus"},
		{"bad faults spec", func(o *cliOpts) { o.faults = "crash:0" }, "fault spec"},
		{"faults detector without schedule", func(o *cliOpts) { o.faults = "detect:5000" }, "detector/recovery"},
		{"faults need single nodes", func(o *cliOpts) { o.faults = "crash:0:50000" }, "single -nodes"},
		{"faults vs fault grid", func(o *cliOpts) {
			o.nodes = "2"
			o.routers = "least-outstanding"
			o.faults = "crash:0:50000"
			o.faultMTBFs = "100000"
			o.faultMTTRs = "50000"
		}, "pick one"},
		{"mtbfs without mttrs", func(o *cliOpts) { o.faultMTBFs = "100000" }, "-fault-mttrs"},
		{"mttrs without mtbfs", func(o *cliOpts) { o.faultMTTRs = "50000" }, "-fault-mtbfs"},
		{"fault-detect outside grid mode", func(o *cliOpts) { o.faultDetectSet = true }, "-fault-detect"},
		{"fault-count outside grid mode", func(o *cliOpts) { o.faultCountSet = true }, "-fault-count"},
		{"negative sample-every", func(o *cliOpts) { o.sampleEvery = -1 }, "-sample-every"},
		{"sample-every without output", func(o *cliOpts) { o.sampleEvery = 100 }, "no output path"},
		{"timeseries without sample-every", func(o *cliOpts) { o.timeseriesOut = "ts-%.csv" }, "-sample-every"},
		// The default 3 node counts × all routers sweep has many cells,
		// so a literal path cannot name every artifact.
		{"multi-cell trace without placeholder", func(o *cliOpts) { o.traceOut = "trace.json" }, "placeholder"},
		{"unwritable trace dir", func(o *cliOpts) {
			o.nodes = "1"
			o.routers = "round-robin"
			o.traceOut = "/nonexistent-telemetry-dir/t.json"
		}, "not writable"},
	}
	for _, c := range cases {
		o := defaultOpts()
		c.mut(&o)
		err := run(o)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestRunOverloadGridModeValidation: the -rates mode has its own
// constraints — a well-formed rate list, exactly one node count and
// router, and at least one overload control to compare against the
// uncontrolled baseline.
func TestRunOverloadGridModeValidation(t *testing.T) {
	grid := func(mut func(*cliOpts)) error {
		o := defaultOpts()
		// A minimal well-formed overload-grid flag set; each case breaks
		// one piece of it.
		o.rates = "1,2"
		o.nodes = "2"
		o.routers = "least-outstanding"
		o.shed = "60:3:20000"
		mut(&o)
		return run(o)
	}
	cases := []struct {
		name string
		mut  func(*cliOpts)
		want string
	}{
		{"bad rates entry", func(o *cliOpts) { o.rates = "1,x" }, "-rates"},
		{"zero rate", func(o *cliOpts) { o.rates = "1,0" }, "-rates"},
		{"multiple node counts", func(o *cliOpts) { o.nodes = "1,2" }, "single -nodes"},
		{"multiple routers", func(o *cliOpts) { o.routers = "p2c,affinity" }, "single -routers"},
		{"no overload control", func(o *cliOpts) { o.shed = "off" }, "-preempt and/or -shed"},
		// rates × combos > 1, so the overload grid needs the placeholder
		// too — validated after the combo ladder is built.
		{"trace without placeholder", func(o *cliOpts) { o.traceOut = "t.json" }, "placeholder"},
	}
	for _, c := range cases {
		err := grid(c.mut)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestRunFaultGridModeValidation: the -fault-mtbfs/-fault-mttrs mode
// has its own constraints — well-formed positive finite axes, exactly
// one node count and router, and sane detector/count parameters.
func TestRunFaultGridModeValidation(t *testing.T) {
	grid := func(mut func(*cliOpts)) error {
		o := defaultOpts()
		// A minimal well-formed fault-grid flag set; each case breaks one
		// piece of it.
		o.faultMTBFs = "100000,400000"
		o.faultMTTRs = "50000"
		o.nodes = "2"
		o.routers = "least-outstanding"
		mut(&o)
		return run(o)
	}
	cases := []struct {
		name string
		mut  func(*cliOpts)
		want string
	}{
		{"bad mtbf entry", func(o *cliOpts) { o.faultMTBFs = "100000,x" }, "-fault-mtbfs"},
		{"zero mtbf", func(o *cliOpts) { o.faultMTBFs = "0" }, "-fault-mtbfs"},
		{"nan mttr", func(o *cliOpts) { o.faultMTTRs = "NaN" }, "-fault-mttrs"},
		{"infinite mttr", func(o *cliOpts) { o.faultMTTRs = "Inf" }, "-fault-mttrs"},
		{"multiple node counts", func(o *cliOpts) { o.nodes = "1,2" }, "single -nodes"},
		{"multiple routers", func(o *cliOpts) { o.routers = "p2c,affinity" }, "single -routers"},
		{"negative detect", func(o *cliOpts) { o.faultDetect = -1; o.faultDetectSet = true }, "-fault-detect"},
		{"zero count", func(o *cliOpts) { o.faultCount = 0; o.faultCountSet = true }, "-fault-count"},
		{"composed with rates", func(o *cliOpts) { o.rates = "1,2"; o.shed = "60" }, "-fault-mtbfs"},
		{"composed with prefix grid", func(o *cliOpts) { o.prefixCaches = "0,64"; o.sched = "chunked" }, "-fault-mtbfs"},
		// mtbfs × mttrs × 2 recovery policies > 1 cell, so telemetry paths
		// need the placeholder here too.
		{"trace without placeholder", func(o *cliOpts) { o.traceOut = "t.json" }, "placeholder"},
	}
	for _, c := range cases {
		err := grid(c.mut)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestParseFaultTimes: the fault-grid axis grammar rejects
// non-positive, non-finite and malformed entries.
func TestParseFaultTimes(t *testing.T) {
	got, err := parseFaultTimes("-fault-mtbfs", " 100000, 2.5e5 ")
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{100000, 2.5e5}; !reflect.DeepEqual(got, want) {
		t.Errorf("parsed %v, want %v", got, want)
	}
	for _, bad := range []string{"", " , ", "1,x", "0", "-2", "NaN", "Inf", "1e400"} {
		if _, err := parseFaultTimes("-fault-mtbfs", bad); err == nil {
			t.Errorf("axis %q accepted", bad)
		}
	}
}

// TestParseRates: the multiplier grammar round-trips and rejects
// non-positive or malformed entries.
func TestParseRates(t *testing.T) {
	got, err := parseRates(" 1, 2.5 ,8 ")
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{1, 2.5, 8}; !reflect.DeepEqual(got, want) {
		t.Errorf("parsed %v, want %v", got, want)
	}
	for _, bad := range []string{"", " , ", "1,x", "0", "-2", "1,,0"} {
		if _, err := parseRates(bad); err == nil {
			t.Errorf("rates %q accepted", bad)
		}
	}
}

// TestRunTelemetryOutputs: a well-formed telemetry flag set passes
// validation and a tiny 2-node fleet writes all three artifacts.
func TestRunTelemetryOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full cluster grid")
	}
	dir := t.TempDir()
	o := defaultOpts()
	o.streams = 2
	o.sessions = 1
	o.scale = 64
	o.nodes = "2"
	o.routers = "round-robin"
	o.tokmin, o.tokmax = 2, 2
	o.traceOut = dir + "/trace.json"
	o.eventsOut = dir + "/events.jsonl"
	o.timeseriesOut = dir + "/ts.csv"
	o.sampleEvery = 1000
	old := swallowStdout(t)
	err := run(o)
	old()
	if err != nil {
		t.Fatalf("telemetry run failed: %v", err)
	}
	for path, prefix := range map[string]string{
		o.traceOut:      `{"traceEvents":`,
		o.eventsOut:     `{"kind":`,
		o.timeseriesOut: "cycle,node,",
	} {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing artifact: %v", err)
		}
		if !strings.HasPrefix(string(b), prefix) {
			t.Errorf("%s starts %q, want prefix %q", path, b[:min(len(b), 40)], prefix)
		}
	}
}

// TestRunDefaultSLOZeroIsDisabled: the unset zero defaults must NOT
// trip the explicit-zero rejection — only flag.Visit-recorded zeroes
// are contradictions. The default opts run a real (tiny) fleet to
// prove the zero SLO is treated as disabled, not invalid.
func TestRunDefaultSLOZeroIsDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full cluster grid")
	}
	o := defaultOpts()
	o.streams = 2
	o.sessions = 1
	o.scale = 64
	o.nodes = "1"
	o.routers = "round-robin"
	o.tokmin, o.tokmax = 2, 2
	// Divert the table from the test's stdout.
	old := swallowStdout(t)
	err := run(o)
	old()
	if err != nil {
		t.Fatalf("default zero SLO rejected: %v", err)
	}
}
