// Command llamcat runs the paper's experiments and ad-hoc simulations.
//
// Reproduce a figure (scaled 8x down by default):
//
//	llamcat -exp fig7a
//	llamcat -exp fig9b -scale 4
//	llamcat -exp all -scale 8
//
// Run a single simulation cell:
//
//	llamcat -model 70b -seq 8192 -policy dynmg+BMA -l2 16MiB
//
// Scale divides sequence lengths and cache sizes together, preserving
// every working-set-to-cache ratio of the paper; -scale 1 is paper
// scale (slow: minutes per figure).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id: fig7a..fig7f, fig8, fig9a, fig9b, hwcost, all")
		scale   = flag.Int("scale", 8, "divide sequence lengths and cache sizes by this factor (1 = paper scale)")
		verbose = flag.Bool("v", false, "log each simulation cell")
		model   = flag.String("model", "70b", "model for single runs: 70b or 405b")
		seq     = flag.Int("seq", 2048, "sequence length for single runs")
		policy  = flag.String("policy", "dynmg+BMA", "policy for single runs, e.g. unopt, dyncta, dynmg+BMA")
		l2      = flag.String("l2", "", "override L2 size for single runs, e.g. 2MiB")
	)
	flag.Parse()

	if *exp != "" {
		if err := runExperiments(*exp, *scale, *verbose); err != nil {
			fmt.Fprintln(os.Stderr, "llamcat:", err)
			os.Exit(1)
		}
		return
	}
	if err := runSingle(*model, *seq, *policy, *l2); err != nil {
		fmt.Fprintln(os.Stderr, "llamcat:", err)
		os.Exit(1)
	}
}

func parseModel(s string) (workload.ModelConfig, error) {
	switch s {
	case "70b", "llama3-70b":
		return workload.Llama3_70B, nil
	case "405b", "llama3-405b":
		return workload.Llama3_405B, nil
	}
	return workload.ModelConfig{}, fmt.Errorf("unknown model %q (want 70b or 405b)", s)
}

func parseSize(s string) (int, error) {
	s = strings.TrimSpace(s)
	mult := 1
	switch {
	case strings.HasSuffix(s, "MiB"), strings.HasSuffix(s, "MB"):
		mult = 1 << 20
		s = strings.TrimSuffix(strings.TrimSuffix(s, "MiB"), "MB")
	case strings.HasSuffix(s, "KiB"), strings.HasSuffix(s, "KB"):
		mult = 1 << 10
		s = strings.TrimSuffix(strings.TrimSuffix(s, "KiB"), "KB")
	}
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %v", s, err)
	}
	return n * mult, nil
}

func runSingle(model string, seq int, policy, l2 string) error {
	m, err := parseModel(model)
	if err != nil {
		return err
	}
	pol, err := llamcat.ParsePolicy(policy)
	if err != nil {
		return err
	}
	cfg := llamcat.DefaultConfig()
	if l2 != "" {
		size, err := parseSize(l2)
		if err != nil {
			return err
		}
		cfg.L2SizeBytes = size
	}
	op := llamcat.Logit(m, seq)
	res, err := llamcat.Run(cfg, op, pol)
	if err != nil {
		return err
	}
	fmt.Printf("workload  %s\npolicy    %s+%v\nL2        %d MiB\nblocks    %d\n\n%s",
		op.Name(), pol.Throttle, pol.Arbiter, cfg.L2SizeBytes>>20, res.TraceBlocks, res.Metrics)
	return nil
}

func runExperiments(id string, scale int, verbose bool) error {
	opts := experiments.Options{Scale: scale}
	if verbose {
		opts.Log = os.Stderr
	}
	ids := []string{id}
	if id == "all" {
		ids = []string{"fig7a", "fig7b", "fig7c", "fig7d", "fig7e", "fig7f", "fig8", "fig9a", "fig9b", "hwcost"}
	}
	// Fig 7 panels share runs; compute each model's result once.
	var fig7 = map[string]*experiments.Fig7Result{}
	fig7For := func(model workload.ModelConfig) (*experiments.Fig7Result, error) {
		if r, ok := fig7[model.Name]; ok {
			return r, nil
		}
		r, err := experiments.RunFig7(model, opts)
		if err == nil {
			fig7[model.Name] = r
		}
		return r, err
	}
	for _, id := range ids {
		switch id {
		case "fig7a", "fig7b", "fig7c":
			r, err := fig7For(workload.Llama3_70B)
			if err != nil {
				return err
			}
			printFig7Panel(id, r)
		case "fig7d", "fig7e", "fig7f":
			r, err := fig7For(workload.Llama3_405B)
			if err != nil {
				return err
			}
			printFig7Panel(id, r)
		case "fig8":
			rows, err := experiments.RunFig8(opts)
			if err != nil {
				return err
			}
			fmt.Printf("Fig 8 — mechanism comparison, llama3-70b @%dK/scale%d\n%s\n",
				8, scale, experiments.RenderFig8(rows))
		case "fig9a", "fig9b":
			model := workload.Llama3_70B
			if id == "fig9b" {
				model = workload.Llama3_405B
			}
			r, err := experiments.RunFig9(model, opts)
			if err != nil {
				return err
			}
			fmt.Print(stats.Table(
				fmt.Sprintf("Fig 9 (%s) — %s @32K/scale%d, speedup vs unopt@32MB/scale", id, model.Name, scale),
				r.Series))
			fmt.Println()
		case "hwcost":
			fmt.Printf("Section 6.1 — hardware cost @15nm\n%s\n", experiments.RenderHWCost(experiments.RunHWCost()))
		default:
			return fmt.Errorf("unknown experiment %q (known: %v)", id, experiments.IDs())
		}
	}
	return nil
}

func printFig7Panel(id string, r *experiments.Fig7Result) {
	switch id {
	case "fig7a", "fig7d":
		fmt.Print(stats.Table(fmt.Sprintf("Fig 7 (%s) — %s throttling speedup vs unopt", id, r.Model.Name), r.Throttling))
	case "fig7b", "fig7e":
		fmt.Print(stats.Table(fmt.Sprintf("Fig 7 (%s) — %s arbitration speedup vs dynmg", id, r.Model.Name), r.Arbitration))
	case "fig7c", "fig7f":
		fmt.Print(stats.Table(fmt.Sprintf("Fig 7 (%s) — %s cumulative speedup vs unopt", id, r.Model.Name), r.Cumulative))
	}
	fmt.Println()
}
