// Package llamcat is a Go reproduction of "LLaMCAT: Optimizing Large
// Language Model Inference with Cache Arbitration and Throttling"
// (Zhou, Lai, Zhang — ICPP 2025).
//
// LLaMCAT optimises the last-level cache of GPU-like AI accelerators
// for the memory-bound decode stage of LLM inference. It combines
// MSHR- and load-balance-aware cache arbitration (the "B", "MA" and
// "BMA" policies) with two-level dynamic multi-gear thread throttling
// ("dynmg"), and evaluates them on a hybrid simulation framework that
// unrolls an analytical dataflow mapping into memory traces driving a
// cycle-level simulator.
//
// This package is the public facade. A minimal single-operator run:
//
//	op := llamcat.Logit(llamcat.Llama3_70B, 8192)
//	res, err := llamcat.Run(llamcat.DefaultConfig(), op, llamcat.PolicyDynMGBMA)
//
// Beyond the paper's single-operator cells, the repo also models the
// serving regime: many concurrent decode requests under a
// continuous-batching scheduler, composed into interleaved
// multi-stream traces (see internal/serving). A minimal serving run:
//
//	scn, err := llamcat.DefaultServeScenario(8)
//	m, err := llamcat.Serve(llamcat.DefaultConfig(), scn, llamcat.PolicyDynMGBMA)
//
// One layer further up, the cluster regime routes an open-loop
// request stream across a fleet of such servers under a pluggable
// load-balancing policy (see internal/cluster). A minimal fleet run:
//
//	fleet, err := llamcat.DefaultClusterScenario(8)
//	cm, err := llamcat.ServeCluster(llamcat.DefaultConfig(), fleet, 4,
//		llamcat.RouterPowerOfTwo, llamcat.PolicyDynMGBMA)
//
// The internal packages implement the substrates: internal/dataflow
// (Timeloop-like mapper + trace generation), internal/dram (DDR5 with
// FR-FCFS), internal/llc (sliced L2 with arbiter, MSHR and queues),
// internal/vcore (vector cores with instruction windows),
// internal/throttle (dynmg, DYNCTA, LCS), internal/arbiter (FCFS, B,
// MA, BMA, COBRRA), internal/sim (the cycle engine),
// internal/serving (the continuous-batching serving engine),
// internal/cluster (the routed multi-node fleet simulator) and
// internal/experiments (the figure, serving-grid and cluster-grid
// harnesses). See docs/ARCHITECTURE.md for the layer map.
package llamcat

import (
	"fmt"
	"io"

	"repro/internal/arbiter"
	"repro/internal/cluster"
	"repro/internal/dataflow"
	"repro/internal/hwprof"
	"repro/internal/memtrace"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Config is the simulated system configuration; the zero value is not
// usable — start from DefaultConfig (Table 5 of the paper).
type Config = sim.Config

// DefaultConfig returns the paper's Table 5 system: 1.96 GHz, 16
// vector cores, 16 MB L2 in 8 slices with 6x8 MSHRs per slice, and
// 4-channel DDR5-3200.
func DefaultConfig() Config { return sim.DefaultConfig() }

// Model re-exports the workload model shape.
type Model = workload.ModelConfig

// The evaluation models of the paper.
var (
	Llama3_70B  = workload.Llama3_70B
	Llama3_405B = workload.Llama3_405B
)

// Op is a Logit-operator workload instance.
type Op = workload.LogitOp

// Logit builds the decode-stage Logit (Q·Kᵀ) operator over a KV cache
// of seqLen tokens — the paper's benchmark workload.
func Logit(model Model, seqLen int) Op {
	return Op{Model: model, SeqLen: seqLen}
}

// AVWorkload is the attention-value operator (AttProb·V), the decode
// stage's other KV-cache-bound kernel, provided as an extension
// workload with the same GQA sharing structure.
type AVWorkload = workload.AVOp

// AV builds the attention-value operator over a KV cache of seqLen
// tokens.
func AV(model Model, seqLen int) AVWorkload {
	return AVWorkload{Model: model, SeqLen: seqLen}
}

// TraceAV generates the memory trace for the AV operator under the
// automatically selected dataflow mapping.
func TraceAV(op AVWorkload) (*memtrace.Trace, error) {
	amap, err := workload.NewAVAddressMap(op, 0)
	if err != nil {
		return nil, err
	}
	logitEquiv := workload.LogitOp{Model: op.Model, SeqLen: op.SeqLen}
	mapping, _, err := dataflow.FindMapping(logitEquiv, 64)
	if err != nil {
		return nil, err
	}
	return dataflow.GenerateAV(op, amap, mapping, 64)
}

// RunAV simulates the AV operator like Run does for Logit.
func RunAV(cfg Config, op AVWorkload, pol Policy) (Result, error) {
	tr, err := TraceAV(op)
	if err != nil {
		return Result{}, err
	}
	return RunTrace(cfg, tr, op.Model.G, pol)
}

// PrefillWorkload is the prefill operator: a chunk of prompt tokens
// scored against the prompt prefix that ends with the chunk — the
// compute-bound phase preceding decode (see internal/workload).
type PrefillWorkload = workload.PrefillOp

// Prefill builds the prefill pass of chunkLen query tokens over a
// kvLen-token prompt prefix. A monolithic prefill of a P-token prompt
// is Prefill(model, P, P).
func Prefill(model Model, kvLen, chunkLen int) PrefillWorkload {
	return PrefillWorkload{Model: model, KVLen: kvLen, ChunkLen: chunkLen}
}

// TracePrefill generates the memory trace for one prefill pass under
// the automatically selected dataflow mapping.
func TracePrefill(op PrefillWorkload) (*memtrace.Trace, error) {
	amap, err := workload.NewPrefillAddressMap(op, 0)
	if err != nil {
		return nil, err
	}
	mapping, _, err := dataflow.FindPrefillMapping(op, 64)
	if err != nil {
		return nil, err
	}
	return dataflow.GeneratePrefill(op, amap, mapping, 64)
}

// RunPrefill simulates one prefill pass like Run does for Logit.
func RunPrefill(cfg Config, op PrefillWorkload, pol Policy) (Result, error) {
	tr, err := TracePrefill(op)
	if err != nil {
		return Result{}, err
	}
	return RunTrace(cfg, tr, op.Model.G, pol)
}

// Policy selects the (throttling, arbitration) pair to simulate.
type Policy struct {
	// Throttle is one of "none", "dyncta", "lcs", "dynmg" or
	// "static:N".
	Throttle string
	// Arbiter is the LLC request arbitration policy.
	Arbiter arbiter.Kind
}

// The policy points evaluated in the paper.
var (
	PolicyUnopt    = Policy{Throttle: "none", Arbiter: arbiter.FCFS}
	PolicyDynMG    = Policy{Throttle: "dynmg", Arbiter: arbiter.FCFS}
	PolicyDynMGB   = Policy{Throttle: "dynmg", Arbiter: arbiter.Balanced}
	PolicyDynMGMA  = Policy{Throttle: "dynmg", Arbiter: arbiter.MA}
	PolicyDynMGBMA = Policy{Throttle: "dynmg", Arbiter: arbiter.BMA}
	PolicyDyncta   = Policy{Throttle: "dyncta", Arbiter: arbiter.FCFS}
	PolicyLCS      = Policy{Throttle: "lcs", Arbiter: arbiter.FCFS}
	PolicyCobrra   = Policy{Throttle: "none", Arbiter: arbiter.COBRRA}
)

// ParsePolicy reads "throttle+arbiter" (e.g. "dynmg+BMA", "dyncta",
// "none+cobrra").
func ParsePolicy(s string) (Policy, error) {
	throttle, arb := s, "fcfs"
	for i := 0; i < len(s); i++ {
		if s[i] == '+' {
			throttle, arb = s[:i], s[i+1:]
			break
		}
	}
	kind, err := arbiter.ParseKind(arb)
	if err != nil {
		return Policy{}, err
	}
	switch throttle {
	case "none", "unopt", "dyncta", "lcs", "dynmg":
	default:
		var n int
		if _, err := fmt.Sscanf(throttle, "static:%d", &n); err != nil {
			return Policy{}, fmt.Errorf("llamcat: unknown throttle policy %q", throttle)
		}
	}
	return Policy{Throttle: throttle, Arbiter: kind}, nil
}

// Metrics re-exports the derived statistics (Fig. 8 of the paper).
type Metrics = stats.Metrics

// Result is one simulation outcome.
type Result struct {
	Cycles  int64
	Metrics Metrics
	// Raw exposes every counter the run accumulated.
	Raw stats.Counters
	// TraceBlocks is the number of thread blocks executed.
	TraceBlocks int
}

// Trace generates the memory trace for op under the automatically
// selected dataflow mapping (the Timeloop-equivalent step of the
// hybrid framework). Most callers use Run directly; Trace is exposed
// for trace inspection and custom frontends.
func Trace(op Op) (*memtrace.Trace, error) {
	amap, err := workload.NewAddressMap(op, 0)
	if err != nil {
		return nil, err
	}
	mapping, _, err := dataflow.FindMapping(op, 64)
	if err != nil {
		return nil, err
	}
	return dataflow.Generate(op, amap, mapping, 64)
}

// TraceWithMapping generates the trace for op under a handwritten
// mapping (see dataflow.ParseMapping for the format).
func TraceWithMapping(op Op, mappingText string) (*memtrace.Trace, error) {
	mapping, err := dataflow.ParseMapping(mappingText)
	if err != nil {
		return nil, err
	}
	amap, err := workload.NewAddressMap(op, 0)
	if err != nil {
		return nil, err
	}
	return dataflow.Generate(op, amap, mapping, 64)
}

// Run simulates op on the configured system under the given policy
// and returns the collected statistics.
func Run(cfg Config, op Op, pol Policy) (Result, error) {
	tr, err := Trace(op)
	if err != nil {
		return Result{}, err
	}
	return RunTrace(cfg, tr, op.Model.G, pol)
}

// RunTrace simulates a pre-generated trace (e.g. one loaded from a
// trace file or built under a handwritten mapping). groupSize is the
// workload's G, used by the spatial thread-block dispatcher.
func RunTrace(cfg Config, tr *memtrace.Trace, groupSize int, pol Policy) (Result, error) {
	cfg.Throttle = pol.Throttle
	cfg.Arbiter = pol.Arbiter
	eng, err := sim.New(cfg, tr, groupSize)
	if err != nil {
		return Result{}, err
	}
	res, err := eng.Run()
	if err != nil {
		return Result{}, err
	}
	return Result{
		Cycles:      res.Cycles,
		Metrics:     res.Metrics,
		Raw:         res.Counters,
		TraceBlocks: len(tr.Blocks),
	}, nil
}

// Speedup returns base.Cycles / opt.Cycles, the paper's metric.
func Speedup(base, opt Result) float64 {
	return stats.Speedup(base.Cycles, opt.Cycles)
}

// ServeScenario re-exports the serving workload: a population of
// decode requests plus a continuous-batching capacity.
type ServeScenario = serving.Scenario

// ServeScenarioConfig re-exports the fixed-seed scenario generator's
// parameters (request count, model mix, prompt/decode ranges, Poisson
// arrival rate).
type ServeScenarioConfig = serving.ScenarioConfig

// ServeMetrics re-exports the serving-level result: tokens/kilocycle,
// token-latency percentiles, queueing delay and the aggregated
// hardware counters of the whole run.
type ServeMetrics = serving.Metrics

// NewServeScenario draws a serving scenario deterministically from a
// seeded config — the same config always yields the same requests and
// arrival times.
func NewServeScenario(cfg ServeScenarioConfig) (ServeScenario, error) {
	return serving.NewScenario(cfg)
}

// DefaultServeScenario returns the stock eight-request
// mixed-sequence-length scenario at the given scale divisor (the
// scenario cmd/serve runs by default).
func DefaultServeScenario(scale int) (ServeScenario, error) {
	return serving.DefaultScenario(scale)
}

// SchedulerConfig re-exports the batch-scheduler configuration of a
// serving scenario: the prefill/decode co-scheduling policy, the
// prefill chunk size and the KV-cache capacity bound. The zero value
// is decode-only with unlimited KV — the prompt assumed prefilled
// elsewhere, exactly the pre-prefill engine.
type SchedulerConfig = serving.SchedulerConfig

// SchedPolicy re-exports the prefill/decode co-scheduling policy
// selector.
type SchedPolicy = serving.SchedPolicy

// The scheduler policies: decode-only (prompt prefilled elsewhere),
// prefill-first (monolithic prompt passes that stall decode), and
// chunked (fixed-size prompt chunks co-scheduled with decode steps,
// Sarathi-Serve style).
const (
	SchedDecodeOnly   = serving.SchedDecodeOnly
	SchedPrefillFirst = serving.SchedPrefillFirst
	SchedChunked      = serving.SchedChunked
)

// ParseSchedPolicy reads a scheduler policy name: "decode-only",
// "prefill-first" or "chunked".
func ParseSchedPolicy(s string) (SchedPolicy, error) {
	return serving.ParseSchedPolicy(s)
}

// Serve runs a continuous-batching serving scenario under the given
// policy: token step by token step, every running stream's per-token
// operator trace composed into one interleaved multi-stream trace
// driving the cycle engine. Deterministic for a fixed (cfg, scn, pol)
// (modulo the StepCache diagnostics block of the returned metrics).
//
// By default the token-step fast path is on: steps whose canonical
// signature was simulated before — by any engine in the process — are
// replayed from the shared step memo, and executed steps reuse a
// persistent resettable simulator. ServeWith selects another mode.
func Serve(cfg Config, scn ServeScenario, pol Policy) (*ServeMetrics, error) {
	return ServeWith(cfg, scn, pol, ServeOptions{})
}

// StepCacheMode re-exports the token-step execution path selector.
type StepCacheMode = serving.StepCacheMode

// The step-cache modes: the full fast path (default), arena+reset
// without memoized replay, and the naive compose-fresh reference. All
// three produce bit-identical simulated metrics.
const (
	StepCacheOn     = serving.StepCacheOn
	StepCacheNoMemo = serving.StepCacheNoMemo
	StepCacheOff    = serving.StepCacheOff
)

// ServeOptions re-exports the serving run options (step-cache mode
// and memo override).
type ServeOptions = serving.RunOptions

// ServeWith is Serve with an explicit step-cache configuration —
// StepCacheOff is the naive reference path, the serving analogue of
// Config.Reference.
func ServeWith(cfg Config, scn ServeScenario, pol Policy, opts ServeOptions) (*ServeMetrics, error) {
	cfg.Throttle = pol.Throttle
	cfg.Arbiter = pol.Arbiter
	return serving.RunWith(cfg, scn, opts)
}

// PreemptPolicy re-exports the KV preemption victim policy of a
// serving scenario's scheduler: which running stream is evicted
// (recompute-on-preempt) when the queue head cannot reserve its KV
// footprint. The zero value disables preemption.
type PreemptPolicy = serving.PreemptPolicy

// The preemption policies: off (queue head waits, the pre-overload
// behaviour), newest (latest admission evicted first — least sunk
// cost), and fewest-tokens (least decode progress lost).
const (
	PreemptOff          = serving.PreemptOff
	PreemptNewest       = serving.PreemptNewest
	PreemptFewestTokens = serving.PreemptFewestTokens
)

// ParsePreemptPolicy reads a preemption policy name: "off", "newest"
// or "fewest-tokens".
func ParsePreemptPolicy(s string) (PreemptPolicy, error) {
	return serving.ParsePreemptPolicy(s)
}

// ArrivalConfig re-exports the arrival-rate shape of a scenario's
// request stream: a deterministic modulation (burst, ramp, diurnal or
// trace replay) of the Poisson arrival process. The zero value is
// plain Poisson.
type ArrivalConfig = serving.ArrivalConfig

// ParseArrival reads an arrival-shape spec: "poisson",
// "burst:PERIOD:DUTY:FACTOR", "ramp:PERIOD:FACTOR",
// "diurnal:PERIOD:FACTOR" or "trace:PERIOD:M1,M2,...".
func ParseArrival(s string) (ArrivalConfig, error) {
	return serving.ParseArrival(s)
}

// SLO re-exports the per-request service-level objective: a TTFT
// deadline and/or a mean time-between-tokens deadline, in cycles.
// Zero deadlines disable each check.
type SLO = serving.SLO

// SLOReport re-exports the goodput-under-SLO summary: met/violated/
// unfinished counts and goodput (tokens of SLO-meeting requests per
// kilocycle).
type SLOReport = serving.SLOReport

// Goodput classifies a finished serving run against the SLO — pure
// post-processing, the run is never perturbed. Fleet-level runs use
// ClusterMetrics.Goodput instead.
func Goodput(m *ServeMetrics, slo SLO) SLOReport {
	return serving.Goodput(m, slo)
}

// FlushStepCaches drops every entry of the process-wide step memo and
// operator-trace cache, releasing their memory. Long-lived embeddings
// that cycle through many unrelated scenarios call it between phases;
// simulated results are unaffected (subsequent steps regenerate what
// they need).
func FlushStepCaches() { serving.FlushSharedCaches() }

// ClusterScenario re-exports the fleet workload: a session-tagged
// request population plus the per-node continuous-batching capacity.
type ClusterScenario = cluster.Scenario

// ClusterScenarioConfig re-exports the fixed-seed fleet workload
// generator's parameters: the serving generator's population knobs
// plus the session count.
type ClusterScenarioConfig = cluster.ScenarioConfig

// ClusterMetrics re-exports the fleet-level result: aggregate
// tokens/kilocycle, end-to-end latency percentiles including router
// queueing, per-node serving metrics and the load-imbalance
// coefficient.
type ClusterMetrics = cluster.Metrics

// RouterPolicy re-exports the request-router policy (the
// load-balancing decision, orthogonal to the cache-level Policy every
// node runs).
type RouterPolicy = cluster.Policy

// The stock router policies. RouterLeastTTFTPressure balances on
// outstanding decode tokens PLUS each node's prefill backlog, the
// time-to-first-token pressure signal of prefill-scheduled fleets.
// RouterPrefixAffinity routes each session to the node whose prefix
// cache retains the most of its context (falling back to the
// session-affinity hash when nothing is cached), the router of the
// prefix-reuse study — enable the cache with
// SchedulerConfig.PrefixCacheTokens.
var (
	RouterRoundRobin        = RouterPolicy{Kind: cluster.RoundRobin}
	RouterLeastOutstanding  = RouterPolicy{Kind: cluster.LeastOutstanding}
	RouterPowerOfTwo        = RouterPolicy{Kind: cluster.PowerOfTwo}
	RouterSessionAffinity   = RouterPolicy{Kind: cluster.SessionAffinity}
	RouterPrefixAffinity    = RouterPolicy{Kind: cluster.PrefixAffinity}
	RouterLeastTTFTPressure = RouterPolicy{Kind: cluster.LeastTTFTPressure}
)

// ParseRouterPolicy reads a router policy name: "round-robin" ("rr"),
// "least-outstanding" ("lot"), "p2c" ("power-of-two"), "affinity"
// ("session-affinity"), "prefix-affinity" ("pfx") or "ttft-pressure"
// ("ltp").
func ParseRouterPolicy(s string) (RouterPolicy, error) {
	return cluster.ParsePolicy(s)
}

// NewClusterScenario draws a fleet workload deterministically from a
// seeded config — the same config always yields the same requests,
// sessions and arrival times.
func NewClusterScenario(cfg ClusterScenarioConfig) (ClusterScenario, error) {
	return cluster.NewScenario(cfg)
}

// DefaultClusterScenario returns the stock sixteen-request,
// four-session fleet workload at the given scale divisor (the
// scenario cmd/cluster runs by default).
func DefaultClusterScenario(scale int) (ClusterScenario, error) {
	return cluster.DefaultScenario(scale)
}

// ClusterOptions re-exports the cluster run options (node fan-out
// width, step-cache mode, memo override).
type ClusterOptions = cluster.Options

// ServeCluster runs a fleet serving scenario: an open-loop request
// stream dispatched by the router policy to nodes identical
// continuous-batching engines, every node running the cache-level
// policy pol on its own cycle-level simulator. Deterministic for a
// fixed (cfg, scn, nodes, router, pol) at any internal parallelism
// (modulo the StepCache diagnostics block). The fleet's nodes share
// the process-wide step memo by default; ServeClusterWith selects
// another mode or memo.
func ServeCluster(cfg Config, scn ClusterScenario, nodes int, router RouterPolicy, pol Policy) (*ClusterMetrics, error) {
	return ServeClusterWith(cfg, scn, nodes, router, pol, ClusterOptions{})
}

// ServeClusterWith is ServeCluster with explicit cluster options.
func ServeClusterWith(cfg Config, scn ClusterScenario, nodes int, router RouterPolicy, pol Policy, opts ClusterOptions) (*ClusterMetrics, error) {
	cfg.Throttle = pol.Throttle
	cfg.Arbiter = pol.Arbiter
	return cluster.Run(cfg, scn, nodes, router, opts)
}

// OverloadConfig re-exports the router-level overload control of a
// fleet run (ClusterOptions.Overload): per-node saturation shedding,
// deterministic retry/backoff and optional least-loaded forwarding.
// The zero value disables it and is bit-identical to the pre-overload
// router.
type OverloadConfig = cluster.OverloadConfig

// ParseOverload reads a shed spec: "off" or
// "SAT[:RETRIES[:BACKOFF[:forward]]]".
func ParseOverload(s string) (OverloadConfig, error) {
	return cluster.ParseOverload(s)
}

// FaultConfig re-exports the deterministic node-failure schedule of a
// fleet run (ClusterOptions.Faults): explicit crashes and straggler
// windows, or a seeded MTBF/MTTR generator, plus the failure
// detector's latency and the drop/blind recovery toggles. The zero
// value disables fault injection and is bit-identical to the
// fault-free fleet.
type FaultConfig = cluster.FaultConfig

// NodeCrash re-exports one scheduled crash of FaultConfig: the node
// loses all in-flight work, KV and prefix cache at a cycle and
// optionally rejoins cold later.
type NodeCrash = cluster.Crash

// NodeStraggler re-exports one scheduled slowdown window of
// FaultConfig: every engine step on the node costs Factor× its
// nominal cycles inside [From, To).
type NodeStraggler = cluster.Straggler

// FaultGen re-exports the seeded crash-schedule generator of
// FaultConfig: Count crash/rejoin incidents drawn from exponential
// MTBF/MTTR distributions, a pure function of its parameters and the
// fleet size.
type FaultGen = cluster.FaultGen

// NodeFaultStats re-exports the per-node fault accounting of
// ClusterMetrics: failures, redispatched victims, lost decode tokens
// and downtime cycles.
type NodeFaultStats = cluster.NodeFaultStats

// ParseFaults reads a fault spec: "off" or comma-joined clauses
// "crash:NODE:AT[:REJOIN]", "slow:NODE:FROM:TO:FACTOR",
// "gen:SEED:MTBF:MTTR:COUNT", "detect:CYCLES", "drop"/"redispatch"
// and "blind"/"aware".
func ParseFaults(s string) (FaultConfig, error) {
	return cluster.ParseFaults(s)
}

// TraceEvent re-exports one telemetry lifecycle event: a typed record
// (arrival, routing, admission, prefill chunk, decode step, prefix
// hit, preemption, shed/retry, retirement or gauge sample) stamped
// with the global cycle and request/session/node/slot identity.
type TraceEvent = telemetry.Event

// TraceEventKind re-exports the event-kind enum of TraceEvent.
type TraceEventKind = telemetry.Kind

// TraceRecorder re-exports the pluggable event sink. A nil recorder
// (the default everywhere) keeps every simulator on its unrecorded
// path, bit-identical to builds without telemetry.
type TraceRecorder = telemetry.Recorder

// TraceCollector re-exports the deterministic event collector: one
// append-only buffer per node plus a router buffer, merged into a
// single cycle-ordered stream whose bytes are identical at any
// internal parallelism.
type TraceCollector = telemetry.Collector

// TraceSpec re-exports the output configuration of the telemetry CLI
// flags (trace/events/timeseries paths plus the sampling period) with
// its validation and per-cell export helpers.
type TraceSpec = telemetry.Spec

// NewTraceCollector returns a collector sampling per-node gauges
// every sampleEvery cycles (0 disables sampling). Wire its Node(i)
// recorders into ServeOptions.Recorder or pass the collector as
// ClusterOptions.Telemetry.
func NewTraceCollector(sampleEvery int64) *TraceCollector {
	return telemetry.NewCollector(sampleEvery)
}

// WritePerfettoTrace writes the merged event stream as Chrome
// trace-event JSON, openable at https://ui.perfetto.dev: the router
// and each node render as processes, batch slots as threads, and each
// request's lifecycle as a flow-linked chain of spans.
func WritePerfettoTrace(w io.Writer, events []TraceEvent) error {
	return telemetry.WritePerfetto(w, events)
}

// WriteTraceJSONL writes the merged event stream as one JSON object
// per line, in deterministic order.
func WriteTraceJSONL(w io.Writer, events []TraceEvent) error {
	return telemetry.WriteJSONL(w, events)
}

// WriteTraceTimeseriesCSV writes the gauge samples of the merged
// event stream as a CSV time series: one row per (cycle, node) plus a
// fleet rollup row per sampling boundary. Runs profiled with
// HWProfSpec additionally carry hw counter columns (DRAM bytes, L2
// hit rate, mem-stall fraction, bus utilisation, bottleneck class).
func WriteTraceTimeseriesCSV(w io.Writer, events []TraceEvent) error {
	return telemetry.WriteTimeseriesCSV(w, events)
}

// HWProfSpec re-exports the hardware-profiling configuration. Set
// Enabled (and, optionally, SampleEvery for bucketed utilization) on
// ServeOptions.HWProf or ClusterOptions.HWProf to attribute every
// step's hardware-counter delta to its phase (prefill, decode,
// recompute after preempt/redispatch), to the streams co-scheduled in
// the step, and to wall-clock buckets; the resulting profile lands on
// ServeMetrics.HW / ClusterMetrics.HW. The zero value disables
// profiling and is bit-inert: metrics and telemetry are byte-identical
// to a build without it.
type HWProfSpec = hwprof.Spec

// HWProfile re-exports one node's attribution profile: per-phase and
// per-request HWCost, the classified bucket time-series and the
// node's majority bottleneck class, with a Render method producing
// the aligned report table.
type HWProfile = hwprof.NodeProfile

// HWFleetProfile re-exports the fleet rollup over per-node profiles
// (summed phases, pooled request percentiles, majority class).
type HWFleetProfile = hwprof.FleetProfile

// HWCost re-exports the per-request hardware cost vector: cycles,
// DRAM bytes, L2 hits/misses and core mem-stall cycles, split from
// each step's counter delta by per-stream tokens.
type HWCost = hwprof.HWCost

// BottleneckClass re-exports the classifier's label enum
// (idle / compute-bound / memory-bound / stalled).
type BottleneckClass = hwprof.Class

// BottleneckThresholds re-exports the classifier decision boundaries
// (zero value: defaults calibrated against the Table 5
// configuration). Set them on HWProfSpec.Thresholds.
type BottleneckThresholds = hwprof.Thresholds
