// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 6). Each benchmark runs the corresponding
// experiment harness and reports the headline numbers of the figure
// as custom metrics (geomean speedups, utilisations, areas), so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. By default the workload matrix is
// scaled down 32x (sequence lengths and cache sizes divided together,
// preserving every working-set-to-cache ratio). Set LLAMCAT_SCALE to
// choose another factor, or LLAMCAT_FULL=1 for paper scale (hours).
package llamcat

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/workload"
)

// benchRecord is one benchmark's entry in BENCH_results.json, the
// per-PR performance trajectory file.
type benchRecord struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	WallSeconds float64 `json:"wall_seconds"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	Scale       int     `json:"scale"`
}

var (
	benchRecMu sync.Mutex
	benchRecs  []benchRecord
)

// record captures a benchmark's wall clock and allocation rate;
// benchmarks call it as `defer record(b)()` so every figure's cost
// lands in BENCH_results.json.
func record(b *testing.B) func() {
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	return func() {
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		benchRecMu.Lock()
		defer benchRecMu.Unlock()
		n := b.N
		if n < 1 {
			n = 1
		}
		rec := benchRecord{
			Name:        b.Name(),
			N:           b.N,
			WallSeconds: b.Elapsed().Seconds(),
			NsPerOp:     float64(b.Elapsed().Nanoseconds()) / float64(n),
			AllocsPerOp: (m1.Mallocs - m0.Mallocs) / uint64(n),
			Scale:       benchScale(),
		}
		// b.N calibration invokes a benchmark several times; keep only
		// the final (largest-N, fully calibrated) measurement per name.
		for i := range benchRecs {
			if benchRecs[i].Name == rec.Name {
				benchRecs[i] = rec
				return
			}
		}
		benchRecs = append(benchRecs, rec)
	}
}

// TestMain writes BENCH_results.json after a -bench run so the perf
// trajectory is tracked across PRs.
func TestMain(m *testing.M) {
	code := m.Run()
	benchRecMu.Lock()
	recs := benchRecs
	benchRecMu.Unlock()
	if len(recs) > 0 {
		if data, err := json.MarshalIndent(recs, "", "  "); err == nil {
			if err := os.WriteFile("BENCH_results.json", append(data, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "bench: writing BENCH_results.json:", err)
			}
		}
	}
	os.Exit(code)
}

func benchScale() int {
	if os.Getenv("LLAMCAT_FULL") == "1" {
		return 1
	}
	if s := os.Getenv("LLAMCAT_SCALE"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 32
}

// Figure results are cached so the three panels of Fig. 7 (which
// share the same simulation matrix) pay for it once.
var (
	benchMu   sync.Mutex
	fig7Cache = map[string]*experiments.Fig7Result{}
	fig9Cache = map[string]*experiments.Fig9Result{}
	fig8Cache []experiments.Fig8Row
)

func fig7For(b *testing.B, model workload.ModelConfig) *experiments.Fig7Result {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if r, ok := fig7Cache[model.Name]; ok {
		return r
	}
	r, err := experiments.RunFig7(model, experiments.Options{Scale: benchScale()})
	if err != nil {
		b.Fatal(err)
	}
	fig7Cache[model.Name] = r
	return r
}

func fig9For(b *testing.B, model workload.ModelConfig) *experiments.Fig9Result {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if r, ok := fig9Cache[model.Name]; ok {
		return r
	}
	// Fig 9's smallest cache approaches the minimum live working set
	// under aggressive scaling; cap the scale at 16.
	s := benchScale()
	if s > 16 {
		s = 16
	}
	r, err := experiments.RunFig9(model, experiments.Options{Scale: s})
	if err != nil {
		b.Fatal(err)
	}
	fig9Cache[model.Name] = r
	return r
}

func fig8Rows(b *testing.B) []experiments.Fig8Row {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if fig8Cache == nil {
		rows, err := experiments.RunFig8(experiments.Options{Scale: benchScale()})
		if err != nil {
			b.Fatal(err)
		}
		fig8Cache = rows
	}
	return fig8Cache
}

func geomeanOf(series []stats.Series, label string) float64 {
	for _, s := range series {
		if s.Label != label {
			continue
		}
		vals := make([]float64, len(s.Points))
		for i, p := range s.Points {
			vals[i] = p.Y
		}
		return stats.Geomean(vals)
	}
	return 0
}

// BenchmarkFig7a_Throttling70B regenerates Fig. 7(a): throttling
// policy speedups (dyncta, lcs, dynmg) on Llama3-70B vs unoptimized.
func BenchmarkFig7a_Throttling70B(b *testing.B) {
	defer record(b)()
	for i := 0; i < b.N; i++ {
		r := fig7For(b, workload.Llama3_70B)
		b.ReportMetric(geomeanOf(r.Throttling, "dynmg"), "dynmg-geomean-x")
		b.ReportMetric(geomeanOf(r.Throttling, "dyncta"), "dyncta-geomean-x")
		b.ReportMetric(geomeanOf(r.Throttling, "lcs"), "lcs-geomean-x")
	}
}

// BenchmarkFig7b_Arbitration70B regenerates Fig. 7(b): arbitration
// speedups over dynmg.
func BenchmarkFig7b_Arbitration70B(b *testing.B) {
	defer record(b)()
	for i := 0; i < b.N; i++ {
		r := fig7For(b, workload.Llama3_70B)
		b.ReportMetric(geomeanOf(r.Arbitration, "dynmg+BMA"), "BMA-geomean-x")
		b.ReportMetric(geomeanOf(r.Arbitration, "dynmg+cobrra"), "cobrra-geomean-x")
	}
}

// BenchmarkFig7c_Cumulative70B regenerates Fig. 7(c): cumulative
// speedups vs unoptimized.
func BenchmarkFig7c_Cumulative70B(b *testing.B) {
	defer record(b)()
	for i := 0; i < b.N; i++ {
		r := fig7For(b, workload.Llama3_70B)
		b.ReportMetric(geomeanOf(r.Cumulative, "dynmg+BMA"), "dynmg+BMA-geomean-x")
	}
}

// BenchmarkFig7d_Throttling405B regenerates Fig. 7(d) for Llama3-405B.
func BenchmarkFig7d_Throttling405B(b *testing.B) {
	defer record(b)()
	for i := 0; i < b.N; i++ {
		r := fig7For(b, workload.Llama3_405B)
		b.ReportMetric(geomeanOf(r.Throttling, "dynmg"), "dynmg-geomean-x")
	}
}

// BenchmarkFig7e_Arbitration405B regenerates Fig. 7(e).
func BenchmarkFig7e_Arbitration405B(b *testing.B) {
	defer record(b)()
	for i := 0; i < b.N; i++ {
		r := fig7For(b, workload.Llama3_405B)
		b.ReportMetric(geomeanOf(r.Arbitration, "dynmg+BMA"), "BMA-geomean-x")
	}
}

// BenchmarkFig7f_Cumulative405B regenerates Fig. 7(f).
func BenchmarkFig7f_Cumulative405B(b *testing.B) {
	defer record(b)()
	for i := 0; i < b.N; i++ {
		r := fig7For(b, workload.Llama3_405B)
		b.ReportMetric(geomeanOf(r.Cumulative, "dynmg+BMA"), "dynmg+BMA-geomean-x")
	}
}

// BenchmarkFig8_Mechanism regenerates Fig. 8: the policy-by-policy
// breakdown of MSHR entry utilisation, hit rates and DRAM bandwidth
// for Llama3-70B @8K-equivalent.
func BenchmarkFig8_Mechanism(b *testing.B) {
	defer record(b)()
	for i := 0; i < b.N; i++ {
		rows := fig8Rows(b)
		for _, r := range rows {
			if r.Policy == "unopt" {
				b.ReportMetric(r.MSHRHitRate, "unopt-mshr-hit")
				b.ReportMetric(r.DRAMBwGBs, "unopt-GB/s")
			}
			if r.Policy == "dynmg+BMA" {
				b.ReportMetric(r.MSHRHitRate, "BMA-mshr-hit")
				b.ReportMetric(r.DRAMBwGBs, "BMA-GB/s")
				b.ReportMetric(r.RelPerf, "BMA-perf-x")
			}
		}
	}
}

// BenchmarkFig9a_CacheSweep70B regenerates Fig. 9(a): cache-size
// sensitivity at a 32K-equivalent sequence, Llama3-70B.
func BenchmarkFig9a_CacheSweep70B(b *testing.B) {
	defer record(b)()
	for i := 0; i < b.N; i++ {
		r := fig9For(b, workload.Llama3_70B)
		b.ReportMetric(geomeanOf(r.Series, "dynmg+BMA"), "dynmg+BMA-geomean-x")
		b.ReportMetric(geomeanOf(r.Series, "dyncta"), "dyncta-geomean-x")
		b.ReportMetric(geomeanOf(r.Series, "unopt"), "unopt-geomean-x")
	}
}

// BenchmarkFig9b_CacheSweep405B regenerates Fig. 9(b) for Llama3-405B.
func BenchmarkFig9b_CacheSweep405B(b *testing.B) {
	defer record(b)()
	for i := 0; i < b.N; i++ {
		r := fig9For(b, workload.Llama3_405B)
		b.ReportMetric(geomeanOf(r.Series, "dynmg+BMA"), "dynmg+BMA-geomean-x")
	}
}

// BenchmarkTableParams_GearSweep is the ablation behind Tables 1–3:
// dynmg restricted to successively higher maximum gears on a
// cache-constrained workload.
func BenchmarkTableParams_GearSweep(b *testing.B) {
	defer record(b)()
	scale := benchScale()
	if scale > 16 {
		scale = 16
	}
	op := Logit(Llama3_70B, 16384/scale)
	cfg := DefaultConfig()
	cfg.L2SizeBytes /= scale
	for i := 0; i < b.N; i++ {
		base, err := Run(cfg, op, PolicyUnopt)
		if err != nil {
			b.Fatal(err)
		}
		res, err := Run(cfg, op, PolicyDynMG)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(Speedup(base, res), "dynmg-x")
	}
}

// BenchmarkHWCost_Area regenerates the Section 6.1 synthesis table via
// the calibrated area model.
func BenchmarkHWCost_Area(b *testing.B) {
	defer record(b)()
	var rows []experiments.HWCostRow
	for i := 0; i < b.N; i++ {
		rows = experiments.RunHWCost()
	}
	for _, r := range rows {
		switch r.Block {
		case "arbiter (incl. request queue)":
			b.ReportMetric(r.AreaUm2, "arbiter-um2")
		case "hit buffer":
			b.ReportMetric(r.AreaUm2, "hitbuf-um2")
		}
	}
}

// BenchmarkAblation_ReqRespArb compares the two Section 3.3
// request-response arbitration flavours (the paper reports similar
// gains under both).
func BenchmarkAblation_ReqRespArb(b *testing.B) {
	defer record(b)()
	scale := benchScale()
	op := Logit(Llama3_70B, 16384/scale)
	for i := 0; i < b.N; i++ {
		for _, mode := range []string{"resp-first", "req-first"} {
			cfg := DefaultConfig()
			cfg.L2SizeBytes /= scale
			cfg.ReqRespArb = mode
			res, err := Run(cfg, op, PolicyDynMGBMA)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Cycles), mode+"-cycles")
		}
	}
}

// BenchmarkAV_Extension runs the attention-value extension workload
// under the final policy (not a paper figure; the decode stage's
// other KV-bound kernel).
func BenchmarkAV_Extension(b *testing.B) {
	defer record(b)()
	scale := benchScale()
	op := AV(Llama3_70B, 16384/scale)
	cfg := DefaultConfig()
	cfg.L2SizeBytes /= scale
	for i := 0; i < b.N; i++ {
		base, err := RunAV(cfg, op, PolicyUnopt)
		if err != nil {
			b.Fatal(err)
		}
		res, err := RunAV(cfg, op, PolicyDynMGBMA)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(Speedup(base, res), "dynmg+BMA-x")
	}
}

// BenchmarkServe_Default runs the stock eight-request
// continuous-batching scenario under the unoptimized baseline and the
// full policy, reporting the serving-level headline numbers — the
// serving performance trajectory BENCH_results.json tracks alongside
// the figures.
func BenchmarkServe_Default(b *testing.B) {
	defer record(b)()
	scale := benchScale()
	scn, err := DefaultServeScenario(scale)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.L2SizeBytes /= scale
	for i := 0; i < b.N; i++ {
		base, err := Serve(cfg, scn, PolicyUnopt)
		if err != nil {
			b.Fatal(err)
		}
		opt, err := Serve(cfg, scn, PolicyDynMGBMA)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(base.TokensPerKCycle, "unopt-tok/kcyc")
		b.ReportMetric(opt.TokensPerKCycle, "BMA-tok/kcyc")
		b.ReportMetric(opt.TokenLatency.P99, "BMA-lat-p99")
	}
}

// BenchmarkServe_Saturated runs a closed-batch (all requests at cycle
// 0) scenario that keeps the batch full — the occupancy-bound serving
// regime.
func BenchmarkServe_Saturated(b *testing.B) {
	defer record(b)()
	scale := benchScale()
	minP := 512 / scale
	if minP < 16 {
		minP = 16
	}
	scn, err := NewServeScenario(ServeScenarioConfig{
		Name: "bench/saturated", Seed: 2, NumRequests: 8,
		MinPromptLen: minP, MaxPromptLen: minP * 2,
		MinDecode: 2, MaxDecode: 4,
		MeanInterArrival: 0, MaxBatch: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.L2SizeBytes /= scale
	for i := 0; i < b.N; i++ {
		m, err := Serve(cfg, scn, PolicyDynMGBMA)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(m.MeanBatchOccupancy, "occupancy")
		b.ReportMetric(m.QueueDelay.P99, "queue-p99")
	}
}

// BenchmarkServe_Chunked runs an eight-request chunked-prefill
// scenario under KV-capacity admission — the prefill subsystem's entry
// in the performance trajectory: every prompt is prefilled on-node in
// fixed chunks co-scheduled with decode steps, and the headline
// numbers are the TTFT percentiles the decode-only scenarios cannot
// report.
func BenchmarkServe_Chunked(b *testing.B) {
	defer record(b)()
	scale := benchScale()
	minP := 512 / scale
	if minP < 16 {
		minP = 16
	}
	maxP := 2048 / scale
	if maxP < minP {
		maxP = minP
	}
	scn, err := NewServeScenario(ServeScenarioConfig{
		Name: "bench/chunked", Seed: 1, NumRequests: 8,
		MinPromptLen: minP, MaxPromptLen: maxP,
		MinDecode: 4, MaxDecode: 8,
		MeanInterArrival: 30000, MaxBatch: 4,
		Sched: SchedulerConfig{
			Policy:      SchedChunked,
			ChunkTokens: 16,
			KVCapTokens: 4 * int64(maxP+8),
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.L2SizeBytes /= scale
	for i := 0; i < b.N; i++ {
		m, err := Serve(cfg, scn, PolicyDynMGBMA)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(m.TokensPerKCycle, "tok/kcyc")
		b.ReportMetric(m.TTFT.P50, "ttft-p50")
		b.ReportMetric(m.TTFT.P99, "ttft-p99")
		b.ReportMetric(float64(m.PrefillTokens), "prefill-tok")
	}
}

// BenchmarkServe_Traced is BenchmarkServe_Default with a telemetry
// collector attached — the recorder-overhead entry in the performance
// trajectory. Its allocs/op ceiling in scripts/check_bench_allocs.sh
// pins what recording may cost; the disabled path needs no ceiling of
// its own because it IS BenchmarkServe_Default (a nil recorder takes
// the exact pre-telemetry branches).
func BenchmarkServe_Traced(b *testing.B) {
	defer record(b)()
	scale := benchScale()
	scn, err := DefaultServeScenario(scale)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.L2SizeBytes /= scale
	for i := 0; i < b.N; i++ {
		col := NewTraceCollector(10000)
		m, err := ServeWith(cfg, scn, PolicyDynMGBMA, ServeOptions{
			Recorder: col.Node(0), SampleEvery: col.SampleEvery(),
		})
		if err != nil {
			b.Fatal(err)
		}
		events := col.Events()
		if len(events) == 0 {
			b.Fatal("traced run recorded no events")
		}
		b.ReportMetric(m.TokensPerKCycle, "tok/kcyc")
		b.ReportMetric(float64(len(events)), "events")
	}
}

// BenchmarkCluster_Smoke runs the stock fleet workload on a four-node
// cluster under the balanced (power-of-two) and locality (affinity)
// routers — the cluster layer's entry in the performance trajectory.
func BenchmarkCluster_Smoke(b *testing.B) {
	defer record(b)()
	scale := benchScale()
	scn, err := DefaultClusterScenario(scale)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.L2SizeBytes /= scale
	for i := 0; i < b.N; i++ {
		p2c, err := ServeCluster(cfg, scn, 4, RouterPowerOfTwo, PolicyDynMGBMA)
		if err != nil {
			b.Fatal(err)
		}
		aff, err := ServeCluster(cfg, scn, 4, RouterSessionAffinity, PolicyDynMGBMA)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(p2c.FleetTokensPerKCycle, "p2c-tok/kcyc")
		b.ReportMetric(p2c.LoadImbalance, "p2c-imbalance")
		b.ReportMetric(aff.FleetTokensPerKCycle, "affinity-tok/kcyc")
		b.ReportMetric(aff.LoadImbalance, "affinity-imbalance")
	}
}

// BenchmarkCluster_Overload drives a fleet into overload — bursty
// arrivals against finite per-node KV caches — with the full
// degradation stack on: chunked prefill, newest-first KV preemption,
// and router-level shedding with retry/backoff and least-loaded
// forwarding. The shed/preempt counters and the goodput under a TTFT
// SLO ride along as custom metrics, keeping graceful degradation
// visible in the performance trajectory.
func BenchmarkCluster_Overload(b *testing.B) {
	defer record(b)()
	scale := benchScale()
	minP := 512 / scale
	if minP < 16 {
		minP = 16
	}
	maxP := 2048 / scale
	if maxP < minP {
		maxP = minP
	}
	arrival, err := ParseArrival("burst:80000:0.4:8")
	if err != nil {
		b.Fatal(err)
	}
	scn, err := NewClusterScenario(ClusterScenarioConfig{
		ScenarioConfig: ServeScenarioConfig{
			Name: "bench/overload", Seed: 9, NumRequests: 16,
			MinPromptLen: minP, MaxPromptLen: maxP,
			MinDecode: 2, MaxDecode: 5,
			MeanInterArrival: 15000, MaxBatch: 2,
			Arrival: arrival,
			Sched: SchedulerConfig{
				Policy:      SchedChunked,
				ChunkTokens: 16,
				// ~1.5 max-size reservations per node: tight enough that
				// the burst head blocks on KV and preemption fires.
				KVCapTokens: 3 * int64(maxP+5) / 2,
				Preempt:     PreemptNewest,
			},
		},
		NumSessions: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Saturation scales with the prompt range so the shed/retry path
	// stays exercised at any LLAMCAT_SCALE.
	shed := OverloadConfig{SaturationTokens: 3 * int64(maxP+5), MaxRetries: 3, BackoffBase: 20000, Forward: true}
	slo := SLO{TTFTCycles: 400000}
	cfg := DefaultConfig()
	cfg.L2SizeBytes /= scale
	for i := 0; i < b.N; i++ {
		m, err := ServeClusterWith(cfg, scn, 2, RouterLeastOutstanding, PolicyDynMGBMA, ClusterOptions{Overload: shed})
		if err != nil {
			b.Fatal(err)
		}
		rep := m.Goodput(slo)
		var preempt int64
		for _, n := range m.PerNode {
			preempt += n.Preemptions
		}
		b.ReportMetric(m.FleetTokensPerKCycle, "tok/kcyc")
		b.ReportMetric(float64(m.Shed), "shed")
		b.ReportMetric(float64(m.Dropped), "dropped")
		b.ReportMetric(float64(preempt), "preempt")
		b.ReportMetric(rep.GoodputPerKCycle, "good-tok/kcyc")
	}
}

// BenchmarkCluster_Faulty runs a fleet through the fault-tolerance
// stack: a mid-run node crash with in-flight victims redispatched to
// the survivors (re-prefilling their generated tokens), a straggler
// window tripling another node's step costs, and health-aware routing
// around the 5000-cycle detection blind spot. The recovery counters
// ride along as custom metrics, keeping fault tolerance visible in
// the performance trajectory.
func BenchmarkCluster_Faulty(b *testing.B) {
	defer record(b)()
	scale := benchScale()
	minP := 512 / scale
	if minP < 16 {
		minP = 16
	}
	maxP := 2048 / scale
	if maxP < minP {
		maxP = minP
	}
	scn, err := NewClusterScenario(ClusterScenarioConfig{
		ScenarioConfig: ServeScenarioConfig{
			Name: "bench/faulty", Seed: 11, NumRequests: 16,
			MinPromptLen: minP, MaxPromptLen: maxP,
			MinDecode: 2, MaxDecode: 5,
			MeanInterArrival: 10000, MaxBatch: 2,
			Sched: SchedulerConfig{Policy: SchedChunked, ChunkTokens: 16},
		},
		NumSessions: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	// The crash lands inside the arrival window at every LLAMCAT_SCALE
	// (16 arrivals at a 10k-cycle mean span ~160k cycles), so victims
	// are always in flight when node 0 dies.
	faults := FaultConfig{
		Crashes:       []NodeCrash{{Node: 0, At: 60000, Rejoin: 220000}},
		Stragglers:    []NodeStraggler{{Node: 1, From: 100000, To: 300000, Factor: 3}},
		DetectLatency: 5000,
	}
	cfg := DefaultConfig()
	cfg.L2SizeBytes /= scale
	for i := 0; i < b.N; i++ {
		m, err := ServeClusterWith(cfg, scn, 2, RouterLeastOutstanding, PolicyDynMGBMA, ClusterOptions{Faults: faults})
		if err != nil {
			b.Fatal(err)
		}
		if m.Redispatched == 0 {
			b.Fatal("committed crash recovered no in-flight requests")
		}
		b.ReportMetric(m.FleetTokensPerKCycle, "tok/kcyc")
		b.ReportMetric(float64(m.Redispatched), "redispatched")
		b.ReportMetric(float64(m.LostTokens), "lost-tok")
		b.ReportMetric(float64(m.DowntimeCycles), "downtime")
	}
}

// BenchmarkCluster_Prefix runs a session-heavy conversational fleet —
// depth-3 sessions whose follow-up turns extend a shared prompt
// prefix — through the prefix-cache stack: per-node LRU prefix
// retention, suffix-only admission, and session-affinity routing to
// the home node holding the prefix. Prefix hits, prefill tokens saved
// and TTFT ride along as custom metrics, keeping the KV-reuse win
// visible in the performance trajectory.
func BenchmarkCluster_Prefix(b *testing.B) {
	defer record(b)()
	scale := benchScale()
	minP := 512 / scale
	if minP < 16 {
		minP = 16
	}
	maxP := 2048 / scale
	if maxP < minP {
		maxP = minP
	}
	scn, err := NewClusterScenario(ClusterScenarioConfig{
		ScenarioConfig: ServeScenarioConfig{
			Name: "bench/prefix", Seed: 13, NumRequests: 24,
			MinPromptLen: minP, MaxPromptLen: maxP,
			MinDecode: 2, MaxDecode: 4,
			MeanInterArrival: 60000, MaxBatch: 4,
			SessionDepth: 3,
			Sched: SchedulerConfig{
				Policy:      SchedChunked,
				ChunkTokens: 16,
				// Room for a handful of whole conversations per node so
				// retained prefixes survive until the follow-up turns.
				PrefixCacheTokens: 16 * int64(maxP),
			},
		},
		NumSessions: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.L2SizeBytes /= scale
	for i := 0; i < b.N; i++ {
		m, err := ServeCluster(cfg, scn, 2, RouterSessionAffinity, PolicyDynMGBMA)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(m.FleetTokensPerKCycle, "tok/kcyc")
		b.ReportMetric(m.TTFT.P50, "ttft-p50")
		b.ReportMetric(float64(m.PrefixHits), "pfx-hits")
		b.ReportMetric(float64(m.PrefillTokensSaved), "pfx-saved")
	}
}

// BenchmarkEngineThroughput measures raw simulator speed (simulated
// cycles per second) — a property of the framework itself rather than
// a paper figure, useful for regression tracking.
func BenchmarkEngineThroughput(b *testing.B) {
	defer record(b)()
	op := Logit(Llama3_70B, 512)
	cfg := DefaultConfig()
	cfg.L2SizeBytes = 1 << 20
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, op, PolicyUnopt)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
}
