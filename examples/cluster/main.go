// Cluster demonstrates the fleet-scale serving simulator through the
// public facade: the stock sixteen-request, four-session workload
// dispatched across a four-node fleet under each router policy,
// reporting the fleet-level metrics a single node cannot — aggregate
// fleet throughput, end-to-end latency including router queueing, and
// the load-imbalance coefficient.
//
// The comparison makes the routing tradeoff concrete: round-robin and
// least-outstanding spread load evenly (imbalance near 1) while
// session affinity concentrates sessions on their home nodes
// (imbalance above 1) — the price a prefix-cache-aware router pays in
// tail latency on this cache-contention simulator.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	scn, err := llamcat.DefaultClusterScenario(8)
	if err != nil {
		log.Fatal(err)
	}
	cfg := llamcat.DefaultConfig()
	cfg.L2SizeBytes /= 8 // shrink the cache with the prompt lengths

	fmt.Printf("fleet workload: %d requests, %d tokens total, batch %d/node\n\n",
		len(scn.Requests), scn.TotalTokens(), scn.MaxBatch)

	const nodes = 4
	for _, router := range []llamcat.RouterPolicy{
		llamcat.RouterRoundRobin,
		llamcat.RouterLeastOutstanding,
		llamcat.RouterPowerOfTwo,
		llamcat.RouterSessionAffinity,
	} {
		m, err := llamcat.ServeCluster(cfg, scn, nodes, router, llamcat.PolicyDynMGBMA)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %d nodes, router %s ===\n%s\n", nodes, router, m)
	}
}
