// Quickstart: simulate one decode-stage Logit operator on the paper's
// Table 5 system, first unoptimized and then with the full LLaMCAT
// policy (dynmg throttling + BMA arbitration), and print the speedup
// and the Fig. 8-style statistics.
//
// Run with a small scaled workload so it finishes in seconds:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 1/8-scale version of the paper's llama3-70b 16K benchmark:
	// 2K tokens of KV cache against a 2 MB L2 keeps the paper's
	// working-set-to-cache ratio of 2.
	cfg := llamcat.DefaultConfig()
	cfg.L2SizeBytes = 2 << 20
	op := llamcat.Logit(llamcat.Llama3_70B, 2048)

	fmt.Printf("workload: %s (K tensor %d KiB, L2 %d KiB)\n\n",
		op.Name(), op.KBytes()>>10, cfg.L2SizeBytes>>10)

	unopt, err := llamcat.Run(cfg, op, llamcat.PolicyUnopt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unoptimized: %d cycles\n%s\n", unopt.Cycles, unopt.Metrics)

	cat, err := llamcat.Run(cfg, op, llamcat.PolicyDynMGBMA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynmg+BMA:   %d cycles\n%s\n", cat.Cycles, cat.Metrics)

	fmt.Printf("speedup: %.2fx\n", llamcat.Speedup(unopt, cat))
	fmt.Println("\nnote how the optimized run trades L2 hits for MSHR hits")
	fmt.Println("(merges) and raises MSHR entry utilisation and DRAM bandwidth —")
	fmt.Println("the Fig. 8 mechanism of the paper.")
}
