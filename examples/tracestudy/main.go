// Tracestudy exercises the analytical half of the hybrid framework:
// it compares dataflow mappings for the Logit operator, shows the
// constrained mapper's choice, generates a trace under a handwritten
// mapping, and round-trips it through the trace file format — the
// Fig. 6 flow of the paper.
//
//	go run ./examples/tracestudy
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
	"repro/internal/dataflow"
	"repro/internal/memtrace"
	"repro/internal/workload"
)

func main() {
	op := workload.LogitOp{Model: workload.Llama3_70B, SeqLen: 1024}

	// 1. What the constrained mapper picks, and why.
	best, ev, err := dataflow.FindMapping(op, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapper's choice for %s:\n%s", op.Name(), best)
	fmt.Printf("  K-share dispatch distance: %.0f (smaller = GQA reuse lands closer)\n", ev.KShareDistance)
	fmt.Printf("  K lines per thread block:  %d\n", ev.TBKLines)
	fmt.Printf("  thread blocks:             %d\n\n", ev.NumTBs)

	// 2. Compare candidate orderings analytically.
	fmt.Println("candidate thread-block orderings:")
	for _, order := range []string{"h l g", "h g l", "l g h"} {
		m, err := dataflow.ParseMapping("mapping logit\ntb_order " + order)
		if err != nil {
			log.Fatal(err)
		}
		e, err := dataflow.Evaluate(m, op, 64)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  tb_order %-6s → K-share distance %6.0f\n", order, e.KShareDistance)
	}
	fmt.Println()

	// 3. Generate a trace under a handwritten mapping and simulate it.
	hand := `mapping logit
tb_order h l g
tb_out_lines 2
vector_bytes 128
l1_l_tile 64
compute_per_row 2
`
	tr, err := llamcat.TraceWithMapping(llamcat.Logit(llamcat.Llama3_70B, 1024), hand)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("handwritten mapping: %d blocks, %d instructions, %d KiB footprint\n",
		len(tr.Blocks), tr.TotalInsts(), tr.Footprint(64)>>10)

	// 4. Round-trip through the trace file format.
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		log.Fatal(err)
	}
	size := buf.Len()
	back, err := memtrace.ReadTrace(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace file round-trip: %d bytes, %d blocks preserved\n\n", size, len(back.Blocks))

	// 5. Simulate the handwritten-mapping trace.
	cfg := llamcat.DefaultConfig()
	cfg.L2SizeBytes = 2 << 20
	res, err := llamcat.RunTrace(cfg, back, op.Model.G, llamcat.PolicyDynMGBMA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated handwritten mapping under dynmg+BMA: %d cycles, %.1f GB/s\n",
		res.Cycles, res.Metrics.DRAMBandwidthGB)
}
