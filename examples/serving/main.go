// Serving demonstrates the continuous-batching serving engine through
// the public facade: a stock eight-request mixed-sequence-length
// scenario evaluated under the unoptimized baseline and the paper's
// full dynmg+BMA policy, reporting the serving-level metrics the
// single-operator figures cannot — decode throughput, token-latency
// percentiles and queueing delay.
//
// The paper's observation carries over from kernels to serving: the
// CAT mechanisms relieve the same MSHR and LLC contention when the
// traffic comes from many interleaved decode streams, so the serving
// throughput gap tracks the single-operator speedup.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	scn, err := llamcat.DefaultServeScenario(8)
	if err != nil {
		log.Fatal(err)
	}
	cfg := llamcat.DefaultConfig()
	cfg.L2SizeBytes /= 8 // shrink the cache with the prompt lengths

	fmt.Printf("scenario: %d requests, %d tokens total, batch capacity %d\n\n",
		len(scn.Requests), scn.TotalTokens(), scn.MaxBatch)

	for _, pol := range []struct {
		name string
		p    llamcat.Policy
	}{
		{"unopt", llamcat.PolicyUnopt},
		{"dynmg+BMA", llamcat.PolicyDynMGBMA},
	} {
		m, err := llamcat.Serve(cfg, scn, pol.p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n%s\n", pol.name, m)
	}
}
