// Policycompare reproduces a scaled Fig. 7 column: every throttling
// and arbitration policy of the paper on one workload, reporting the
// speedup ladder (unopt → baselines → dynmg → dynmg+BMA).
//
//	go run ./examples/policycompare
//	go run ./examples/policycompare -model 405b -seq 1024
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	model := flag.String("model", "70b", "model: 70b or 405b")
	seq := flag.Int("seq", 2048, "sequence length (scaled; paper uses 4K-32K)")
	l2MiB := flag.Int("l2", 2, "L2 size in MiB (scaled; paper uses 16)")
	flag.Parse()

	m := llamcat.Llama3_70B
	if *model == "405b" {
		m = llamcat.Llama3_405B
	}
	cfg := llamcat.DefaultConfig()
	cfg.L2SizeBytes = *l2MiB << 20
	op := llamcat.Logit(m, *seq)

	policies := []struct {
		name string
		pol  llamcat.Policy
	}{
		{"unopt", llamcat.PolicyUnopt},
		{"dyncta", llamcat.PolicyDyncta},
		{"lcs", llamcat.PolicyLCS},
		{"cobrra", llamcat.PolicyCobrra},
		{"dynmg", llamcat.PolicyDynMG},
		{"dynmg+B", llamcat.PolicyDynMGB},
		{"dynmg+MA", llamcat.PolicyDynMGMA},
		{"dynmg+BMA", llamcat.PolicyDynMGBMA},
	}

	fmt.Printf("workload %s, L2 %d MiB\n\n", op.Name(), *l2MiB)
	fmt.Printf("%-12s %12s %9s %9s %9s %9s %9s\n",
		"policy", "cycles", "speedup", "L2-hit", "mshr-hit", "util", "t_cs")

	var base llamcat.Result
	for i, p := range policies {
		res, err := llamcat.Run(cfg, op, p.pol)
		if err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		if i == 0 {
			base = res
		}
		fmt.Printf("%-12s %12d %9.3f %9.3f %9.3f %9.3f %9.3f\n",
			p.name, res.Cycles, llamcat.Speedup(base, res),
			res.Metrics.L2HitRate, res.Metrics.MSHRHitRate,
			res.Metrics.MSHREntryUtil, res.Metrics.CacheStallFrac)
	}
}
