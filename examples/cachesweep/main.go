// Cachesweep reproduces a scaled Fig. 9 study: how each policy
// responds to shrinking L2 capacity under a long-context workload.
// The paper's observation: the unoptimized system degrades steeply as
// the cache shrinks, while dynmg+BMA saturates early because
// throttling bounds the live working set.
//
//	go run ./examples/cachesweep
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	model := flag.String("model", "70b", "model: 70b or 405b")
	seq := flag.Int("seq", 4096, "sequence length (scaled; paper uses 32K)")
	flag.Parse()

	m := llamcat.Llama3_70B
	if *model == "405b" {
		m = llamcat.Llama3_405B
	}
	op := llamcat.Logit(m, *seq)

	// Scaled versions of the paper's {16, 32, 64} MB sweep.
	caches := []int{2 << 20, 4 << 20, 8 << 20}
	policies := []struct {
		name string
		pol  llamcat.Policy
	}{
		{"unopt", llamcat.PolicyUnopt},
		{"dyncta", llamcat.PolicyDyncta},
		{"dynmg", llamcat.PolicyDynMG},
		{"dynmg+BMA", llamcat.PolicyDynMGBMA},
	}

	// Normalise against unopt at the middle cache size, like Fig. 9.
	cfg := llamcat.DefaultConfig()
	cfg.L2SizeBytes = caches[1]
	base, err := llamcat.Run(cfg, op, llamcat.PolicyUnopt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s; speedup vs unopt @%d MiB\n\n", op.Name(), caches[1]>>20)
	fmt.Printf("%-12s", "policy")
	for _, c := range caches {
		fmt.Printf("%10dMiB", c>>20)
	}
	fmt.Println()
	for _, p := range policies {
		fmt.Printf("%-12s", p.name)
		for _, c := range caches {
			cfg := llamcat.DefaultConfig()
			cfg.L2SizeBytes = c
			res, err := llamcat.Run(cfg, op, p.pol)
			if err != nil {
				log.Fatalf("%s @%d: %v", p.name, c, err)
			}
			fmt.Printf("%13.3f", llamcat.Speedup(base, res))
		}
		fmt.Println()
	}
}
