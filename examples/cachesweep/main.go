// Cachesweep reproduces a scaled Fig. 9 study: how each policy
// responds to shrinking L2 capacity under a long-context workload.
// The paper's observation: the unoptimized system degrades steeply as
// the cache shrinks, while dynmg+BMA saturates early because
// throttling bounds the live working set.
//
// The policy×cache matrix fans out across -parallel workers, and -v
// streams one progress line per finished run to stderr so multi-minute
// sweeps are observable.
//
//	go run ./examples/cachesweep -v
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	model := flag.String("model", "70b", "model: 70b or 405b")
	seq := flag.Int("seq", 4096, "sequence length (scaled; paper uses 32K)")
	parallel := flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "stream per-run progress to stderr")
	flag.Parse()

	m := workload.Llama3_70B
	if *model == "405b" {
		m = workload.Llama3_405B
	}
	op := workload.LogitOp{Model: m, SeqLen: *seq}

	// Scaled versions of the paper's {16, 32, 64} MB sweep.
	caches := []int{2 << 20, 4 << 20, 8 << 20}
	policies := []experiments.Policy{
		experiments.Unopt, experiments.Dyncta,
		experiments.DynMG, experiments.DynMGBMA,
	}

	base := sim.DefaultConfig()
	opts := experiments.Options{Base: &base, Parallel: *parallel}
	if *verbose {
		opts.Log = os.Stderr
	}
	r := experiments.NewRunner(opts)

	// One matrix: the normalisation baseline (unopt at the middle
	// cache size, like Fig. 9) plus every policy×cache cell.
	cells := []experiments.CellSpec{{Op: op, Pol: experiments.Unopt, L2Bytes: caches[1]}}
	for _, p := range policies {
		for _, c := range caches {
			cells = append(cells, experiments.CellSpec{Op: op, Pol: p, L2Bytes: c})
		}
	}
	results, err := r.RunCells(cells)
	if err != nil {
		log.Fatal(err)
	}
	base0 := results[0]

	fmt.Printf("workload %s; speedup vs unopt @%d MiB\n\n", op.Name(), caches[1]>>20)
	fmt.Printf("%-12s", "policy")
	for _, c := range caches {
		fmt.Printf("%10dMiB", c>>20)
	}
	fmt.Println()
	idx := 1
	for _, p := range policies {
		fmt.Printf("%-12s", p.Label)
		for range caches {
			fmt.Printf("%13.3f", stats.Speedup(base0.Cycles, results[idx].Cycles))
			idx++
		}
		fmt.Println()
	}
}
